"""Equivalence suite for the batched query pipeline (`query_many`).

Every batched serving path must reproduce, for a mixed workload, the
scalar per-query loop *exactly*:

* answers — object ids, scores (bitwise), and tie-break order,
* total IO charges over the workload (the modeled-cost contract),
* across serial / thread / process executors for the fan-out paths,

for APPX1, APPX2, APPX2+, EXACT2, EXACT3, and both instant engines —
including degenerate snaps, knot-coincident endpoints, out-of-domain
intervals, tie-heavy data, duplicate queries, and append-staleness
fallbacks.
"""

import multiprocessing

import numpy as np
import pytest

from repro.approximate.methods import Appx1, Appx2, Appx2Plus
from repro.btree.batch import modeled_successor_many
from repro.btree.tree import BPlusTree
from repro.core.errors import InvalidQueryError
from repro.core.queries import TopKQuery, workload_arrays
from repro.datasets import sample_instant_workload, sample_workload
from repro.exact import Exact2, Exact3
from repro.instant.engine import InstantBruteForce, InstantIntervalTree
from repro.parallel import get_executor
from repro.storage import BlockDevice

from _support import make_random_database

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

EXECUTOR_MATRIX = [
    pytest.param("serial", 1, id="serial"),
    pytest.param("thread", 2, id="thread2"),
    pytest.param(
        "process",
        2,
        id="process2",
        marks=pytest.mark.skipif(not _HAS_FORK, reason="needs fork"),
    ),
]

KMAX = 24


def tricky_workload(database, method=None, count=64, seed=17):
    """A mixed workload spiked with every edge case the pipeline models.

    Returns ``(t1s, t2s, ks)`` including: knot-coincident endpoints,
    zero-length intervals, intervals fully outside the domain,
    breakpoint-exact snaps (when ``method`` has breakpoints), and an
    exact duplicate pair.
    """
    batch = sample_workload(database, count=count, kmax=KMAX, seed=seed)
    t1s, t2s, ks = batch.t1s.copy(), batch.t2s.copy(), batch.ks.copy()
    t_min, t_max = database.span
    knots = database.store().knot_times
    t1s[0], t2s[0] = float(knots[3]), float(knots[3]) + 7.0
    t1s[1], t2s[1] = float(knots[40]) - 5.0, float(knots[40])
    t2s[2] = t1s[2]  # zero-length interval
    t1s[3], t2s[3] = t_max + 1.0, t_max + 2.0  # fully past the end
    t1s[4], t2s[4] = t_min - 3.0, t_min - 1.0  # fully before the start
    t1s[5], t2s[5], ks[5] = t1s[6], t2s[6], ks[6]  # duplicate query
    if method is not None and getattr(method, "breakpoints", None) is not None:
        times = method.breakpoints.times
        t1s[7], t2s[7] = float(times[1]), float(times[-2])
        t1s[8], t2s[8] = float(times[2]), float(times[2])  # empty snap
    return t1s, t2s, ks


def assert_batch_equals_scalar(method, t1s, t2s, ks, executor=None):
    """Scalar-loop answers and IO totals == query_many's, bit for bit."""
    before = method.io_stats.snapshot()
    expected = [
        method.query(TopKQuery(float(a), float(b), int(k)))
        for a, b, k in zip(t1s, t2s, ks)
    ]
    scalar = method.io_stats.snapshot() - before
    before = method.io_stats.snapshot()
    got = method.query_many(
        np.stack([t1s, t2s, ks], axis=1), executor=executor
    )
    batched = method.io_stats.snapshot() - before
    assert len(got) == len(expected)
    for row, (want, have) in enumerate(zip(expected, got)):
        assert want == have, f"answer diverged at row {row}"
    assert scalar.reads == batched.reads
    assert scalar.writes == batched.writes
    return expected


# ----------------------------------------------------------------------
# per-method equivalence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def db():
    return make_random_database(num_objects=60, avg_segments=24, seed=21)


@pytest.fixture(scope="module")
def tie_db():
    """Many equal scores: constant-value objects in two groups."""
    from repro.core import PiecewiseLinearFunction, TemporalObject
    from repro.core.database import TemporalDatabase

    objects = []
    for i in range(40):
        level = 2.0 if i % 2 else 5.0
        objects.append(
            TemporalObject(
                i,
                PiecewiseLinearFunction([0.0, 50.0, 100.0], [level] * 3),
            )
        )
    return TemporalDatabase(objects, span=(0.0, 100.0), pad=True)


@pytest.mark.parametrize("cls", [Appx1, Appx2, Appx2Plus])
def test_approximate_query_many_matches_scalar(db, cls):
    method = cls(r=18, kmax=KMAX).build(db)
    t1s, t2s, ks = tricky_workload(db, method)
    assert_batch_equals_scalar(method, t1s, t2s, ks)


@pytest.mark.parametrize("cls", [Exact2, Exact3])
def test_exact_query_many_matches_scalar(db, cls):
    method = cls().build(db)
    t1s, t2s, ks = tricky_workload(db, method)
    assert_batch_equals_scalar(method, t1s, t2s, ks)


@pytest.mark.parametrize("cls", [Appx2Plus, Exact3])
def test_query_many_tie_heavy(tie_db, cls):
    method = (
        cls(r=8, kmax=KMAX) if cls is Appx2Plus else cls()
    ).build(tie_db)
    t1s, t2s, ks = tricky_workload(tie_db, method, count=40, seed=3)
    assert_batch_equals_scalar(method, t1s, t2s, ks)


@pytest.mark.parametrize("backend,workers", EXECUTOR_MATRIX)
def test_exact3_executor_matrix(db, backend, workers):
    method = Exact3().build(db)
    t1s, t2s, ks = tricky_workload(db, method)
    assert_batch_equals_scalar(
        method, t1s, t2s, ks, executor=get_executor(backend, workers)
    )


def test_negative_scores_query_many():
    negative = make_random_database(seed=13, negative=True)
    method = Exact3().build(negative)
    t1s, t2s, ks = tricky_workload(negative, method)
    assert_batch_equals_scalar(method, t1s, t2s, ks)


# ----------------------------------------------------------------------
# instant engines
# ----------------------------------------------------------------------
def test_instant_engines_query_many(db):
    ts, ks = sample_instant_workload(db, count=50, kmax=KMAX, seed=5)
    knots = db.store().knot_times
    ts = np.concatenate([ts, knots[[4, 90]], [db.span[1] + 5.0]])
    ks = np.concatenate([ks, [3, 5, 2]])
    for engine in (InstantIntervalTree().build(db), InstantBruteForce().build(db)):
        expected = [engine.query(float(t), int(k)) for t, k in zip(ts, ks)]
        got = engine.query_many(ts, ks)
        assert all(a == b for a, b in zip(expected, got))


def test_instant_tree_io_counts_match(db):
    ts, ks = sample_instant_workload(db, count=50, kmax=KMAX, seed=6)
    engine = InstantIntervalTree().build(db)
    before = engine.io_stats.snapshot()
    expected = [engine.query(float(t), int(k)) for t, k in zip(ts, ks)]
    scalar = engine.io_stats.snapshot() - before
    before = engine.io_stats.snapshot()
    got = engine.query_many(ts, ks)
    batched = engine.io_stats.snapshot() - before
    assert all(a == b for a, b in zip(expected, got))
    assert scalar.reads == batched.reads


# ----------------------------------------------------------------------
# fallbacks stay equivalent
# ----------------------------------------------------------------------
def test_query_many_after_append_falls_back_and_matches():
    database = make_random_database(num_objects=25, avg_segments=12, seed=2)
    method = Exact3().build(database)
    t_max = database.span[1]
    database.append_segment(3, t_max + 5.0, 4.0)
    method.append(3, t_max + 5.0, 4.0)
    assert method.tree.has_overflow
    t1s, t2s, ks = tricky_workload(database, method, count=20, seed=9)
    assert_batch_equals_scalar(method, t1s, t2s, ks)


def test_appx2plus_query_many_after_append_matches():
    database = make_random_database(num_objects=25, avg_segments=12, seed=4)
    method = Appx2Plus(r=10, kmax=KMAX).build(database)
    t_max = database.span[1]
    database.append_segment(1, t_max + 2.0, 1.0)
    method.append(1, t_max + 2.0, 1.0)
    t1s, t2s, ks = tricky_workload(database, method, count=20, seed=10)
    assert_batch_equals_scalar(method, t1s, t2s, ks)


def test_query_many_with_cache_matches_answers(db):
    """Buffer pools switch query_many to LRU replay; answers agree."""
    method = Appx2(r=14, kmax=KMAX, cache_blocks=16).build(db)
    t1s, t2s, ks = tricky_workload(db, method, count=24, seed=12)
    method.drop_caches()
    expected = [
        method.query(TopKQuery(float(a), float(b), int(k)))
        for a, b, k in zip(t1s, t2s, ks)
    ]
    method.drop_caches()
    got = method.query_many(np.stack([t1s, t2s, ks], axis=1))
    assert all(a == b for a, b in zip(expected, got))


@pytest.mark.parametrize("cache_blocks", [4, 32, 4096])
def test_exact3_query_many_replays_lru_cache(db, cache_blocks):
    """cache_blocks > 0 keeps batching: the scalar block access stream
    is replayed through the pool, so hits, charges, and the final LRU
    contents are identical to the scalar loop's."""
    scalar = Exact3(cache_blocks=cache_blocks).build(db)
    batched = Exact3(cache_blocks=cache_blocks).build(db)
    t1s, t2s, ks = tricky_workload(db, count=40, seed=14)
    expected = [
        scalar.query(TopKQuery(float(a), float(b), int(k)))
        for a, b, k in zip(t1s, t2s, ks)
    ]
    got = batched.query_many(np.stack([t1s, t2s, ks], axis=1))
    assert all(a == b for a, b in zip(expected, got))
    assert scalar.io_stats.reads == batched.io_stats.reads
    assert scalar.io_stats.cache_hits == batched.io_stats.cache_hits
    # Same blocks cached, in the same LRU recency order.
    assert list(scalar._cache._entries.keys()) == list(
        batched._cache._entries.keys()
    )
    # A follow-up scalar query therefore sees the same pool state.
    probe = TopKQuery(float(t1s[9]) + 0.613, float(t2s[9]) + 1.741, 5)
    before_a, before_b = scalar.io_stats.reads, batched.io_stats.reads
    assert scalar.query(probe) == batched.query(probe)
    assert (
        scalar.io_stats.reads - before_a == batched.io_stats.reads - before_b
    )


@pytest.mark.parametrize("cache_blocks", [4, 32, 4096])
def test_appx1_query_many_replays_lru_cache(db, cache_blocks):
    """QUERY1 under a buffer pool replays the scalar access stream."""
    scalar = Appx1(r=14, kmax=KMAX, cache_blocks=cache_blocks).build(db)
    batched = Appx1(r=14, kmax=KMAX, cache_blocks=cache_blocks).build(db)
    t1s, t2s, ks = tricky_workload(db, scalar, count=40, seed=21)
    expected = [
        scalar.query(TopKQuery(float(a), float(b), int(k)))
        for a, b, k in zip(t1s, t2s, ks)
    ]
    got = batched.query_many(np.stack([t1s, t2s, ks], axis=1))
    assert all(a == b for a, b in zip(expected, got))
    assert scalar.io_stats.reads == batched.io_stats.reads
    assert scalar.io_stats.cache_hits == batched.io_stats.cache_hits
    assert list(scalar._cache._entries.keys()) == list(
        batched._cache._entries.keys()
    )
    probe = TopKQuery(float(t1s[10]) + 0.421, float(t2s[10]) + 1.733, 5)
    before_a, before_b = scalar.io_stats.reads, batched.io_stats.reads
    assert scalar.query(probe) == batched.query(probe)
    assert (
        scalar.io_stats.reads - before_a == batched.io_stats.reads - before_b
    )


@pytest.mark.parametrize("cls", [Appx2, Appx2Plus], ids=["appx2", "appx2plus"])
@pytest.mark.parametrize("cache_blocks", [4, 32, 4096])
def test_appx2_query_many_replays_lru_cache(db, cls, cache_blocks):
    """QUERY2 under a buffer pool replays the scalar access stream."""
    scalar = cls(r=14, kmax=KMAX, cache_blocks=cache_blocks).build(db)
    batched = cls(r=14, kmax=KMAX, cache_blocks=cache_blocks).build(db)
    t1s, t2s, ks = tricky_workload(db, scalar, count=40, seed=22)
    expected = [
        scalar.query(TopKQuery(float(a), float(b), int(k)))
        for a, b, k in zip(t1s, t2s, ks)
    ]
    got = batched.query_many(np.stack([t1s, t2s, ks], axis=1))
    assert all(a == b for a, b in zip(expected, got))
    assert scalar.io_stats.reads == batched.io_stats.reads
    assert scalar.io_stats.cache_hits == batched.io_stats.cache_hits
    assert list(scalar._cache._entries.keys()) == list(
        batched._cache._entries.keys()
    )
    probe = TopKQuery(float(t1s[10]) + 0.421, float(t2s[10]) + 1.733, 5)
    before_a, before_b = scalar.io_stats.reads, batched.io_stats.reads
    assert scalar.query(probe) == batched.query(probe)
    assert (
        scalar.io_stats.reads - before_a == batched.io_stats.reads - before_b
    )


def test_instant_tree_query_many_replays_lru_cache(db):
    from repro.storage.cache import LRUCache

    ts, ks = sample_instant_workload(db, count=40, kmax=KMAX, seed=15)
    knots = db.store().knot_times
    ts = np.concatenate([ts, knots[[7, 33]]])
    ks = np.concatenate([ks, [4, 4]])
    scalar = InstantIntervalTree().build(db)
    scalar.device.set_cache(LRUCache(16))
    batched = InstantIntervalTree().build(db)
    batched.device.set_cache(LRUCache(16))
    expected = [scalar.query(float(t), int(k)) for t, k in zip(ts, ks)]
    got = batched.query_many(ts, ks)
    assert all(a == b for a, b in zip(expected, got))
    assert scalar.io_stats.reads == batched.io_stats.reads
    assert scalar.io_stats.cache_hits == batched.io_stats.cache_hits
    assert list(scalar.device._cache._entries.keys()) == list(
        batched.device._cache._entries.keys()
    )


# ----------------------------------------------------------------------
# workload plumbing and the successor model
# ----------------------------------------------------------------------
def test_workload_arrays_forms(db):
    batch = sample_workload(db, count=5, kmax=4, seed=0)
    a = workload_arrays(batch)
    b = workload_arrays(batch.as_queries())
    c = workload_arrays(batch.as_array())
    for x, y in zip(a, b):
        assert np.array_equal(x, y)
    for x, y in zip(a, c):
        assert np.array_equal(x, y)


def test_workload_arrays_validation():
    with pytest.raises(InvalidQueryError):
        workload_arrays(np.asarray([[2.0, 1.0, 3.0]]))
    with pytest.raises(InvalidQueryError):
        workload_arrays(np.asarray([[1.0, 2.0, 0.0]]))


def test_query_many_rejects_k_above_kmax(db):
    method = Appx2(r=12, kmax=4).build(db)
    with pytest.raises(InvalidQueryError):
        method.query_many(np.asarray([[1.0, 9.0, 5.0]]))


def test_sample_workload_is_reproducible(db):
    a = sample_workload(db, count=32, kmax=9, seed=123)
    b = sample_workload(db, count=32, kmax=9, seed=123)
    assert np.array_equal(a.t1s, b.t1s)
    assert np.array_equal(a.t2s, b.t2s)
    assert np.array_equal(a.ks, b.ks)
    c = sample_workload(db, count=32, kmax=9, seed=124)
    assert not np.array_equal(a.t1s, c.t1s)
    assert a.ks.min() >= 1 and a.ks.max() <= 9
    assert np.all(a.t2s >= a.t1s)


def test_modeled_successor_matches_real_walks():
    rng = np.random.default_rng(0)
    device = BlockDevice()
    tree = BPlusTree(device, value_columns=1)
    keys = np.unique(rng.uniform(0.0, 100.0, 900))
    tree.bulk_load(keys, np.arange(keys.size, dtype=np.float64).reshape(-1, 1))
    lookups = np.concatenate(
        [rng.uniform(-5.0, 105.0, 200), keys[:7], keys[-2:]]
    )
    succ, exists, reads = modeled_successor_many(
        keys, lookups, tree.leaf_capacity, tree.height
    )
    for pos, key in enumerate(lookups):
        before = device.stats.reads
        hit = tree.successor(float(key))
        assert device.stats.reads - before == reads[pos]
        if hit is None:
            assert not exists[pos]
        else:
            assert exists[pos]
            assert int(hit[1][0]) == succ[pos]


def test_dyadic_decompose_many_matches_walks(db):
    method = Appx2(r=18, kmax=KMAX).build(db)
    index = method.index
    batch = sample_workload(db, count=30, kmax=KMAX, seed=8)
    j1s, j2s, valid, _ = index.snap_indices_many(batch.t1s, batch.t2s)
    idx = np.flatnonzero(valid)
    covered_lists, walk_reads = index.decompose_many(j1s[idx], j2s[idx])
    for pos, row in enumerate(idx):
        snapped = index.snap_indices(float(batch.t1s[row]), float(batch.t2s[row]))
        assert snapped == (int(j1s[row]), int(j2s[row]))
        before = index.device.stats.reads
        nodes = index.decompose(*snapped)
        assert index.device.stats.reads - before == walk_reads[pos]
        assert [(n.lo, n.hi) for n in nodes] == [
            (index._topology()[nid][0], index._topology()[nid][1])
            for nid in covered_lists[pos]
        ]
