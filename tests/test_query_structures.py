"""Tests for QUERY1 (nested pairs) and QUERY2 (dyadic) structures."""

import numpy as np
import pytest

from repro.core.errors import InvalidQueryError
from repro.storage import BlockDevice
from repro.approximate import build_breakpoints1, build_breakpoints2
from repro.approximate.dyadic import DyadicIndex
from repro.approximate.query1 import NestedPairIndex

from _support import make_random_database, random_intervals


@pytest.fixture(scope="module")
def setup():
    db = make_random_database(num_objects=40, avg_segments=25, seed=99)
    bp = build_breakpoints1(db, r=33)
    return db, bp


@pytest.fixture(scope="module")
def query1(setup):
    db, bp = setup
    index = NestedPairIndex(BlockDevice(), bp, kmax=15)
    return index.build(db)


@pytest.fixture(scope="module")
def query2(setup):
    db, bp = setup
    index = DyadicIndex(BlockDevice(), bp, kmax=15)
    return index.build(db)


class TestNestedPairIndex:
    def test_snapped_scores_are_exact_on_snapped_interval(self, setup, query1):
        """QUERY1 stores sigma_i(B(t1), B(t2)) exactly."""
        db, bp = setup
        for t1, t2 in random_intervals(db, 30, seed=3):
            res = query1.query(t1, t2, 10)
            s1, s2 = bp.snap_time(t1), bp.snap_time(t2)
            if s1 >= s2:
                assert len(res) == 0
                continue
            ref = db.brute_force_top_k(s1, s2, 10)
            assert res.object_ids == ref.object_ids
            assert np.allclose(res.scores, ref.scores, atol=1e-6)

    def test_epsilon_one_guarantee(self, setup, query1):
        """Definition 1 with alpha=1: |sigma~ - sigma| <= eps*M per rank."""
        db, bp = setup
        for t1, t2 in random_intervals(db, 30, seed=4):
            res = query1.query(t1, t2, 10)
            ref = db.brute_force_top_k(t1, t2, 10)
            for j, item in enumerate(res):
                truth = ref[j].score
                assert abs(item.score - truth) <= bp.threshold * (1 + 1e-6)

    def test_k_exceeding_kmax_rejected(self, query1):
        with pytest.raises(InvalidQueryError):
            query1.query(0.0, 50.0, 16)

    def test_degenerate_snap_returns_empty(self, setup, query1):
        db, bp = setup
        # Choose t1, t2 inside one breakpoint gap.
        mid = (bp.times[3] + bp.times[4]) / 2
        res = query1.query(float(mid), float(mid) + 1e-9, 5)
        assert len(res) == 0

    def test_query_io_small(self, setup, query1):
        db, bp = setup
        query1.device.stats.reset()
        query1.query(10.0, 80.0, 10)
        # Two B+-tree descents + list blocks.
        assert query1.device.stats.reads <= 10

    def test_approximate_score_matches_list(self, setup, query1):
        db, bp = setup
        res = query1.query(5.0, 95.0, 5)
        for item in res:
            assert query1.approximate_score(
                item.object_id, 5.0, 95.0
            ) == pytest.approx(item.score)


class TestDyadicIndex:
    def test_decomposition_is_disjoint_cover(self, setup, query2):
        db, bp = setup
        rng = np.random.default_rng(5)
        num_gaps = bp.r - 1
        for _ in range(40):
            j1, j2 = sorted(rng.integers(0, num_gaps + 1, 2))
            if j1 == j2:
                continue
            nodes = query2.decompose(int(j1), int(j2))
            covered = sorted((n.lo, n.hi) for n in nodes)
            # Disjoint and exactly covering [j1, j2).
            assert covered[0][0] == j1
            assert covered[-1][1] == j2
            for (lo_a, hi_a), (lo_b, hi_b) in zip(covered, covered[1:]):
                assert hi_a == lo_b

    def test_decomposition_size_bound(self, setup, query2):
        """Lemma 4: at most 2*log2(r) dyadic intervals."""
        db, bp = setup
        num_gaps = bp.r - 1
        bound = 2 * np.ceil(np.log2(max(num_gaps, 2))) + 2
        rng = np.random.default_rng(6)
        for _ in range(60):
            j1, j2 = sorted(rng.integers(0, num_gaps + 1, 2))
            if j1 == j2:
                continue
            assert len(query2.decompose(int(j1), int(j2))) <= bound

    def test_candidate_scores_are_lower_bounds(self, setup, query2):
        """Summed dyadic scores never exceed the snapped-interval truth."""
        db, bp = setup
        for t1, t2 in random_intervals(db, 20, seed=7):
            snapped = query2.snap_indices(t1, t2)
            if snapped is None:
                continue
            s1, s2 = float(bp.times[snapped[0]]), float(bp.times[snapped[1]])
            for obj_id, score in query2.candidates(t1, t2, 10).items():
                truth = db.exact_score(obj_id, s1, s2)
                assert score <= truth + 1e-6

    def test_epsilon_2logr_guarantee(self, setup, query2):
        """Definition 2 with alpha = 2 log r (Lemma 4)."""
        db, bp = setup
        alpha = 2 * np.log2(bp.r)
        for t1, t2 in random_intervals(db, 30, seed=8):
            res = query2.query(t1, t2, 10)
            ref = db.brute_force_top_k(t1, t2, 10)
            for j, item in enumerate(res):
                truth = ref[j].score
                assert item.score >= truth / alpha - bp.threshold - 1e-6
                assert item.score <= truth + bp.threshold + 1e-6

    def test_candidate_pool_bounded(self, setup, query2):
        db, bp = setup
        k = 10
        bound = 2 * k * np.ceil(np.log2(bp.r)) + k
        for t1, t2 in random_intervals(db, 20, seed=9):
            assert len(query2.candidates(t1, t2, k)) <= bound

    def test_k_exceeding_kmax_rejected(self, query2):
        with pytest.raises(InvalidQueryError):
            query2.candidates(0.0, 50.0, 99)

    def test_empty_snap(self, setup, query2):
        db, bp = setup
        mid = (bp.times[3] + bp.times[4]) / 2
        assert query2.candidates(float(mid), float(mid), 5) == {}

    def test_smaller_than_query1(self, setup, query1, query2):
        """Theta(r * kmax) vs Theta(r^2 * kmax) footprint."""
        assert (
            query2.device.size_bytes < query1.device.size_bytes
        )


class TestWithBreakpoints2:
    def test_structures_work_on_b2(self):
        db = make_random_database(num_objects=30, avg_segments=20, seed=101)
        bp = build_breakpoints2(db, 0.002)
        q1 = NestedPairIndex(BlockDevice(), bp, kmax=10).build(db)
        q2 = DyadicIndex(BlockDevice(), bp, kmax=10).build(db)
        for t1, t2 in random_intervals(db, 15, seed=11):
            ref = db.brute_force_top_k(t1, t2, 5)
            r1 = q1.query(t1, t2, 5)
            r2 = q2.query(t1, t2, 5)
            for res in (r1, r2):
                for j, item in enumerate(res):
                    # Very fine breakpoints: answers nearly exact.
                    assert abs(item.score - ref[j].score) <= max(
                        10 * bp.threshold, 1e-6
                    ) or item.object_id == ref[j].object_id
