"""Equivalence tests: PLFStore batch primitives vs per-object PLFs.

The columnar kernel's contract is that every batch primitive reproduces
the scalar per-object arithmetic (bit-for-bit where the consumers rely
on it — breakpoint sweeps — and to 1e-9 everywhere else).  Databases
are randomized, include negative scores, and are padded, per the ISSUE.
"""

import numpy as np
import pytest

from repro.core import PiecewiseLinearFunction, PLFStore, TemporalObject
from repro.core.errors import ReproError

from _support import make_random_database, random_intervals


@pytest.fixture(scope="module", params=[False, True], ids=["positive", "negative"])
def db(request):
    return make_random_database(
        num_objects=40, avg_segments=25, seed=11, negative=request.param
    )


@pytest.fixture(scope="module")
def store(db):
    return db.store()


def probe_times(db, count=60, seed=5):
    rng = np.random.default_rng(seed)
    t_min, t_max = db.span
    pad = 0.1 * (t_max - t_min)
    ts = rng.uniform(t_min - pad, t_max + pad, count)
    knots = np.concatenate([obj.function.times for obj in db])
    # Include exact knot times: the piece-selection edge cases.
    return np.concatenate([ts, rng.choice(knots, 20, replace=False)])


class TestCumulative:
    def test_cumulative_at_bitwise(self, db, store):
        for t in probe_times(db):
            ref = np.asarray([obj.function.cumulative(t) for obj in db])
            got = store.cumulative_at(t)
            assert np.array_equal(ref, got)

    def test_cumulative_at_many_matches(self, db, store):
        ts = probe_times(db)
        got = store.cumulative_at_many(ts)
        for row, t in enumerate(ts):
            ref = np.asarray([obj.function.cumulative(t) for obj in db])
            assert np.array_equal(ref, got[row])

    def test_chunked_many_matches_unchunked(self, db, store, monkeypatch):
        import repro.core.plfstore as mod

        ts = probe_times(db)
        full = store.cumulative_at_many(ts)
        monkeypatch.setattr(mod, "_CHUNK_ELEMENTS", db.num_objects * 3)
        assert np.array_equal(store.cumulative_at_many(ts), full)


class TestIntegrals:
    def test_integrals_bitwise(self, db, store):
        for t1, t2 in random_intervals(db, 40, seed=3):
            ref = np.asarray([obj.function.integral(t1, t2) for obj in db])
            assert np.array_equal(ref, store.integrals(t1, t2))

    def test_integrals_many(self, db, store):
        queries = np.asarray(random_intervals(db, 25, seed=9))
        got = store.integrals_many(queries)
        for row, (t1, t2) in enumerate(queries):
            ref = np.asarray([obj.function.integral(t1, t2) for obj in db])
            assert np.allclose(ref, got[row], atol=1e-9)

    def test_reversed_interval_scores_zero(self, store):
        assert np.all(store.integrals(50.0, 10.0) == 0.0)
        out = store.integrals_many(np.asarray([[50.0, 10.0], [10.0, 50.0]]))
        assert np.all(out[0] == 0.0)
        assert np.any(out[1] != 0.0)

    def test_masses_between(self, db, store):
        grid = np.linspace(*db.span, 17)
        masses = store.masses_between(grid)
        assert masses.shape == (db.num_objects, grid.size - 1)
        for row, obj in enumerate(db):
            cums = np.asarray([obj.function.cumulative(g) for g in grid])
            assert np.allclose(masses[row], np.diff(cums), atol=1e-9)


class TestValuesAndTopK:
    def test_values_at(self, db, store):
        for t in probe_times(db):
            ref = np.asarray([obj.function.value(t) for obj in db])
            assert np.allclose(ref, store.values_at(t), atol=1e-9)

    def test_top_k_matches_brute_force(self, db, store):
        for t1, t2 in random_intervals(db, 20, seed=21):
            ref = db.brute_force_top_k(t1, t2, 7)
            got = store.top_k(t1, t2, 7)
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-9)

    def test_top_k_many(self, db, store):
        queries = np.asarray(random_intervals(db, 10, seed=33))
        results = store.top_k_many(queries, 5)
        for (t1, t2), got in zip(queries, results):
            ref = db.brute_force_top_k(t1, t2, 5)
            assert got.object_ids == ref.object_ids


class TestInverseCumulative:
    def test_matches_scalar_bitwise(self, db):
        # Run on |g|: the inverse requires nondecreasing cumulatives.
        store = db.store(use_absolute=True)
        rng = np.random.default_rng(17)
        fractions = rng.uniform(-0.2, 1.3, store.num_objects)
        targets = fractions * store.totals
        ref = np.asarray(
            [
                fn.inverse_cumulative(float(t))
                for fn, t in zip(store.functions, targets)
            ]
        )
        got = store.inverse_cumulative_many(targets)
        assert np.array_equal(ref, got)

    def test_flat_runs_land_on_earliest_crossing(self):
        # Mass 2 accrues on [0, 2], is flat on [2, 5], then grows again.
        fn = PiecewiseLinearFunction(
            [0.0, 2.0, 5.0, 6.0], [2.0, 0.0, 0.0, 2.0]
        )
        store = PLFStore([fn])
        assert fn.inverse_cumulative(2.0) == pytest.approx(2.0)
        assert store.inverse_cumulative_many(np.asarray([2.0]))[0] == (
            fn.inverse_cumulative(2.0)
        )
        assert store.inverse_cumulative_many(np.asarray([2.5]))[0] == (
            fn.inverse_cumulative(2.5)
        )
        assert store.inverse_cumulative_many(np.asarray([10.0]))[0] == np.inf


class TestAbsolute:
    def test_vectorized_absolute_matches_reference_loop(self, db):
        for obj in db:
            fn = obj.function
            got = fn.absolute()
            # Reference: the historical per-segment Python loop.
            ref_times = [float(fn.times[0])]
            ref_values = [abs(float(fn.values[0]))]
            for seg in fn.segments():
                if (seg.v0 < 0 < seg.v1) or (seg.v1 < 0 < seg.v0):
                    t_cross = seg.t0 - seg.v0 / seg.slope
                    if seg.t0 < t_cross < seg.t1:
                        ref_times.append(t_cross)
                        ref_values.append(0.0)
                ref_times.append(seg.t1)
                ref_values.append(abs(seg.v1))
            assert np.array_equal(got.times, np.asarray(ref_times))
            assert np.array_equal(got.values, np.asarray(ref_values))

    def test_absolute_store_cached(self, store):
        assert store.absolute() is store.absolute()


class TestStoreLifecycle:
    def test_database_caches_store(self, db):
        assert db.store() is db.store()

    def test_append_invalidates_store(self):
        db = make_random_database(num_objects=6, avg_segments=8, seed=2)
        before = db.store()
        end = db.t_max + 1.0
        db.append_segment(0, end, 3.0)
        after = db.store()
        assert after is not before
        ref = np.asarray([obj.function.cumulative(end) for obj in db])
        assert np.array_equal(ref, after.cumulative_at(end))

    def test_staleness_clears_after_read_burst(self):
        """One append must not pin read-heavy workloads to scalar
        paths forever: a few fallback queries re-arm the rebuild."""
        db = make_random_database(num_objects=8, avg_segments=6, seed=4)
        db.store()
        db.append_segment(0, db.t_max + 1.0, 2.0)
        assert not db.wants_store
        for _ in range(3):
            assert not db.has_store
            db.scores(10.0, 40.0)  # scalar fallback, counts toward re-arm
        assert db.wants_store
        db.scores(10.0, 40.0)  # rebuilds and answers through the kernel
        assert db.has_store

    def test_empty_store_rejected(self):
        with pytest.raises(ReproError):
            PLFStore([])

    def test_padded_objects_score_zero_outside_original_span(self):
        # A padded object contributes 0 outside its true support.
        fn = PiecewiseLinearFunction([10.0, 20.0], [4.0, 4.0])
        obj = TemporalObject(0, fn)
        from repro.core import TemporalDatabase

        db = TemporalDatabase([obj], span=(0.0, 100.0), pad=True)
        store = db.store()
        assert store.integrals(0.0, 5.0)[0] == pytest.approx(0.0, abs=1e-6)
        assert store.integrals(12.0, 18.0)[0] == pytest.approx(24.0)

    def test_store_shape_counters(self, db, store):
        assert store.num_objects == db.num_objects
        assert store.num_segments == db.total_segments
        assert store.num_knots == db.total_segments + db.num_objects
        assert store.nbytes > 0
        assert store.sequential_total_mass == pytest.approx(db.total_mass)


class TestHarnessKernelModes:
    def test_kernel_microbenchmark_reports_speedup(self):
        from repro.bench.harness import kernel_microbenchmark

        db = make_random_database(num_objects=30, avg_segments=10, seed=5)
        report = kernel_microbenchmark(db, num_queries=3, repeats=1)
        assert report["m"] == 30
        assert report["scalar_seconds"] > 0
        assert report["batch_seconds"] > 0
        assert report["speedup"] > 0

    def test_evaluate_batched_matches_reference(self):
        from repro.bench.harness import evaluate_batched, exact_reference
        from repro.core.queries import TopKQuery

        db = make_random_database(num_objects=25, avg_segments=12, seed=6)
        queries = [
            TopKQuery(t1, t2, 5) for t1, t2 in random_intervals(db, 6, seed=8)
        ]
        exact = exact_reference(db, queries)
        report = evaluate_batched(db, queries, exact, measure_quality=True)
        assert report.method == "KERNEL-BATCH"
        assert report.precision == pytest.approx(1.0)
        assert report.ratio == pytest.approx(1.0)
        assert report.avg_query_ios == 0.0
        assert report.index_size_bytes > 0


class TestScoresRouting:
    def test_custom_finalize_survives_batched_paths(self):
        """A subclass overriding only scalar finalize() must stay
        correct on the kernel-batched Exact2/Exact3 paths (the base
        finalize_many delegates elementwise)."""
        from repro.core.aggregates import SumAggregate
        from repro.core.queries import TopKQuery
        from repro.exact import Exact2, Exact3

        class Doubled(SumAggregate):
            name = "sum2x"

            def finalize(self, raw, a, b):
                return 2.0 * raw

        small = make_random_database(num_objects=12, avg_segments=8, seed=13)
        t1, t2 = 20.0, 70.0
        ref = small.brute_force_top_k(t1, t2, 4, aggregate=Doubled())
        for cls in (Exact2, Exact3):
            got = cls(aggregate=Doubled()).build(small).query(
                TopKQuery(t1, t2, 4)
            )
            assert got.object_ids == ref.object_ids, cls.__name__
            assert np.allclose(got.scores, ref.scores, atol=1e-6), cls.__name__

    def test_database_scores_match_per_object_loop(self, db):
        from repro.core.aggregates import AVG, F2, SUM

        for t1, t2 in random_intervals(db, 15, seed=41):
            for agg in (SUM, AVG, F2):
                ref = np.asarray(
                    [agg.interval(obj.function, t1, t2) for obj in db]
                )
                assert np.allclose(
                    db.scores(t1, t2, agg), ref, atol=1e-9
                ), agg.name
