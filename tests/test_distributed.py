"""Tests for the distributed setting (object/time partitioning, TA)."""

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.distributed import (
    CommStats,
    ObjectPartitionedCluster,
    TimePartitionedCluster,
)

from _support import make_random_database, random_intervals


@pytest.fixture(scope="module")
def db():
    return make_random_database(num_objects=40, avg_segments=20, seed=66)


class TestCommStats:
    def test_record(self):
        stats = CommStats()
        stats.record(5)
        stats.record(3)
        assert stats.messages == 2
        assert stats.pairs == 8
        assert stats.bytes == 128

    def test_reset(self):
        stats = CommStats()
        stats.record(5)
        stats.reset()
        assert stats.messages == 0 and stats.pairs == 0


class TestObjectPartitioned:
    def test_exactness(self, db):
        cluster = ObjectPartitionedCluster(db, num_nodes=4)
        for t1, t2 in random_intervals(db, 15, seed=1):
            ref = db.brute_force_top_k(t1, t2, 6)
            got = cluster.query(t1, t2, 6)
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-6)

    def test_communication_is_p_times_k(self, db):
        cluster = ObjectPartitionedCluster(db, num_nodes=4)
        cluster.comm.reset()
        cluster.query(10, 80, 6)
        assert cluster.comm.messages == cluster.num_nodes
        assert cluster.comm.pairs <= cluster.num_nodes * 6

    def test_single_node_degenerate(self, db):
        cluster = ObjectPartitionedCluster(db, num_nodes=1)
        ref = db.brute_force_top_k(20, 60, 5)
        assert cluster.query(20, 60, 5).object_ids == ref.object_ids

    def test_rejects_bad_node_counts(self, db):
        with pytest.raises(ReproError):
            ObjectPartitionedCluster(db, num_nodes=0)
        with pytest.raises(ReproError):
            ObjectPartitionedCluster(db, num_nodes=10_000)


class TestTimePartitioned:
    @pytest.fixture(scope="class")
    def cluster(self, db):
        return TimePartitionedCluster(db, num_nodes=5)

    def test_scatter_gather_exact(self, db, cluster):
        for t1, t2 in random_intervals(db, 12, seed=2):
            ref = db.brute_force_top_k(t1, t2, 6)
            got = cluster.query_scatter_gather(t1, t2, 6)
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-5)

    def test_threshold_algorithm_exact(self, db, cluster):
        for t1, t2 in random_intervals(db, 12, seed=3):
            ref = db.brute_force_top_k(t1, t2, 6)
            got = cluster.query_threshold(t1, t2, 6)
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-5)

    def test_only_touched_nodes_participate(self, db, cluster):
        cluster.comm.reset()
        # Query entirely inside the first slice.
        hi = float(cluster.boundaries[1])
        cluster.query_scatter_gather(db.t_min, hi * 0.9, 4)
        # One node ships pairs (one message carrying m partials).
        assert cluster.comm.messages == 1

    def test_ta_on_skewed_data_ships_less(self):
        """On skewed data TA terminates early vs scatter-gather."""
        db = make_random_database(num_objects=80, avg_segments=15, seed=67)
        # Skew: scale a handful of objects up heavily.
        from repro.core import (
            PiecewiseLinearFunction,
            TemporalDatabase,
            TemporalObject,
        )

        objects = []
        for obj in db:
            factor = 50.0 if obj.object_id < 4 else 0.1
            fn = obj.function
            objects.append(
                TemporalObject(
                    obj.object_id,
                    PiecewiseLinearFunction(fn.times, fn.values * factor),
                )
            )
        skewed = TemporalDatabase(objects, span=db.span, pad=True)
        cluster = TimePartitionedCluster(skewed, num_nodes=4)

        cluster.comm.reset()
        ref = cluster.query_scatter_gather(10, 90, 4)
        scatter_pairs = cluster.comm.pairs

        cluster.comm.reset()
        got = cluster.query_threshold(10, 90, 4, batch_size=4)
        ta_pairs = cluster.comm.pairs

        assert got.object_ids == ref.object_ids
        assert ta_pairs < scatter_pairs

    def test_rejects_bad_node_count(self, db):
        with pytest.raises(ReproError):
            TimePartitionedCluster(db, num_nodes=0)


class TestRestrictedPlf:
    def test_partition_preserves_scores(self, db):
        """Slicing every object across nodes must conserve integrals."""
        cluster = TimePartitionedCluster(db, num_nodes=3)
        rng = np.random.default_rng(4)
        for _ in range(10):
            t1, t2 = np.sort(rng.uniform(*db.span, 2))
            for obj in list(db)[:5]:
                whole = obj.score(float(t1), float(t2))
                parts = 0.0
                for node in cluster.nodes:
                    try:
                        shard_obj = node.database.get(obj.object_id)
                    except Exception:
                        continue
                    parts += shard_obj.score(float(t1), float(t2))
                assert parts == pytest.approx(whole, abs=1e-6)
