"""Tests for the instant top-k engines (top-k(t))."""

import numpy as np
import pytest

from repro.core import PiecewiseLinearFunction, TemporalDatabase, TemporalObject
from repro.core.errors import IndexStateError, InvalidQueryError
from repro.instant import InstantBruteForce, InstantIntervalTree

from _support import make_random_database


@pytest.fixture(scope="module")
def db():
    return make_random_database(num_objects=30, avg_segments=20, seed=55)


@pytest.fixture(scope="module")
def engines(db):
    return InstantBruteForce().build(db), InstantIntervalTree().build(db)


class TestAgreement:
    def test_engines_agree(self, db, engines):
        brute, tree = engines
        rng = np.random.default_rng(2)
        for t in rng.uniform(*db.span, 40):
            a = brute.query(float(t), 5)
            b = tree.query(float(t), 5)
            assert a.object_ids == b.object_ids
            assert np.allclose(a.scores, b.scores, atol=1e-9)

    def test_matches_direct_evaluation(self, db, engines):
        _, tree = engines
        res = tree.query(42.0, 3)
        for item in res:
            assert item.score == pytest.approx(
                db.get(item.object_id).function.value(42.0)
            )

    def test_at_knot_time(self, db, engines):
        brute, tree = engines
        # Exactly at an object's knot: shared-endpoint duplicates must
        # not corrupt the answer.
        knot = float(db.get(0).function.times[3])
        a = brute.query(knot, 6)
        b = tree.query(knot, 6)
        assert a.object_ids == b.object_ids


class TestSemanticsVsAggregate:
    def test_instant_differs_from_aggregate(self):
        """The paper's Figure 2 argument: an object can win the
        aggregate ranking without ever being the instant top-1."""
        # o1: steady medium; o2: one tall spike.
        o1 = TemporalObject(1, PiecewiseLinearFunction([0, 10], [5, 5]))
        o2 = TemporalObject(
            2, PiecewiseLinearFunction([0, 4.9, 5, 5.1, 10], [0, 0, 100, 0, 0])
        )
        db = TemporalDatabase([o1, o2], span=(0, 10), pad=True)
        tree = InstantIntervalTree().build(db)
        # At the spike instant, o2 wins.
        assert tree.query(5.0, 1).object_ids == [2]
        # Over the whole interval, o1's aggregate wins.
        assert db.brute_force_top_k(0, 10, 1).object_ids == [1]


class TestMechanics:
    def test_unbuilt_raises(self):
        with pytest.raises(IndexStateError):
            InstantIntervalTree().query(1.0, 1)
        with pytest.raises(IndexStateError):
            InstantBruteForce().query(1.0, 1)

    def test_bad_k(self, engines):
        for engine in engines:
            with pytest.raises(InvalidQueryError):
                engine.query(10.0, 0)

    def test_io_counted(self, db, engines):
        _, tree = engines
        tree.io_stats.reset()
        tree.query(50.0, 5)
        assert tree.io_stats.reads > 0
        assert tree.index_size_bytes > 0

    def test_outside_domain_empty_or_zero(self, db, engines):
        _, tree = engines
        res = tree.query(db.t_max + 100.0, 3)
        assert len(res) == 0
