"""Unit tests for segment geometry (paper Equation (1))."""

import numpy as np
import pytest

from repro.core.geometry import (
    Segment,
    interpolate,
    segment_integral,
    segment_integrals,
    solve_linear_mass,
)


class TestInterpolate:
    def test_endpoints(self):
        assert interpolate(0, 1, 2, 5, 0) == 1
        assert interpolate(0, 1, 2, 5, 2) == 5

    def test_midpoint(self):
        assert interpolate(0, 1, 2, 5, 1) == 3

    def test_degenerate_segment(self):
        assert interpolate(1, 7, 1, 9, 1) == 7

    def test_negative_slope(self):
        assert interpolate(0, 10, 10, 0, 4) == pytest.approx(6)


class TestSegmentIntegral:
    def test_full_span_is_trapezoid_area(self):
        # Trapezoid with parallel sides 2 and 6 over width 4.
        assert segment_integral(0, 2, 4, 6, 0, 4) == pytest.approx(16)

    def test_no_overlap_right(self):
        assert segment_integral(0, 2, 4, 6, 5, 9) == 0.0

    def test_no_overlap_left(self):
        assert segment_integral(5, 2, 9, 6, 0, 4) == 0.0

    def test_touching_boundary_is_zero(self):
        assert segment_integral(0, 2, 4, 6, 4, 8) == 0.0

    def test_partial_overlap(self):
        # Over [0, 2] the chord of (0,2)-(4,6) runs 2 -> 4: area 6.
        assert segment_integral(0, 2, 4, 6, 0, 2) == pytest.approx(6)

    def test_interior_subinterval(self):
        # Over [1, 3]: values 3 -> 5, area 8.
        assert segment_integral(0, 2, 4, 6, 1, 3) == pytest.approx(8)

    def test_query_contains_segment(self):
        assert segment_integral(2, 1, 3, 1, 0, 10) == pytest.approx(1)

    def test_negative_values(self):
        assert segment_integral(0, -2, 4, -6, 0, 4) == pytest.approx(-16)

    def test_matches_numeric_quadrature(self):
        rng = np.random.default_rng(5)
        for _ in range(50):
            t0, dt = rng.uniform(0, 10), rng.uniform(0.1, 5)
            v0, v1 = rng.uniform(-5, 5, 2)
            a, b = np.sort(rng.uniform(t0 - 1, t0 + dt + 1, 2))
            xs = np.linspace(max(a, t0), min(b, t0 + dt), 10001)
            if xs[0] >= xs[-1]:
                expected = 0.0
            else:
                ys = v0 + (v1 - v0) / dt * (xs - t0)
                expected = np.trapezoid(ys, xs)
            got = segment_integral(t0, v0, t0 + dt, v1, a, b)
            assert got == pytest.approx(expected, abs=1e-6)


class TestSegmentIntegralsVectorized:
    def test_matches_scalar(self):
        rng = np.random.default_rng(11)
        t0 = rng.uniform(0, 10, 200)
        dt = rng.uniform(0.1, 3, 200)
        t1 = t0 + dt
        v0 = rng.uniform(-4, 8, 200)
        v1 = rng.uniform(-4, 8, 200)
        a, b = 3.0, 9.0
        got = segment_integrals(t0, v0, t1, v1, a, b)
        for i in range(200):
            assert got[i] == pytest.approx(
                segment_integral(t0[i], v0[i], t1[i], v1[i], a, b), abs=1e-12
            )

    def test_empty_input(self):
        out = segment_integrals(
            np.empty(0), np.empty(0), np.empty(0), np.empty(0), 0, 1
        )
        assert out.shape == (0,)


class TestSegment:
    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            Segment(2, 0, 1, 0)

    def test_slope_and_area(self):
        seg = Segment(0, 2, 4, 6)
        assert seg.slope == pytest.approx(1.0)
        assert seg.area == pytest.approx(16)
        assert seg.duration == 4

    def test_value(self):
        assert Segment(0, 0, 2, 4).value(1.0) == pytest.approx(2)


class TestSolveLinearMass:
    def test_flat_value(self):
        # v=2, w=0: mass d = 2x -> x = d/2.
        assert solve_linear_mass(2.0, 0.0, 3.0, 10.0) == pytest.approx(1.5)

    def test_rising_slope(self):
        # v=0, w=2: mass = x^2 -> x = sqrt(d).
        assert solve_linear_mass(0.0, 2.0, 9.0, 10.0) == pytest.approx(3.0)

    def test_falling_slope_full_area(self):
        # v=4, w=-1 over dt=4: total mass 8; solving for 8 gives 4.
        assert solve_linear_mass(4.0, -1.0, 8.0, 4.0) == pytest.approx(4.0)

    def test_zero_target(self):
        assert solve_linear_mass(5.0, 1.0, 0.0, 10.0) == 0.0

    def test_bounded_by_max_dt(self):
        assert solve_linear_mass(1.0, 0.0, 100.0, 2.5) == 2.5

    def test_monotone_in_target(self):
        xs = [solve_linear_mass(1.0, 0.5, d, 100.0) for d in np.linspace(0.1, 20, 40)]
        assert all(b >= a for a, b in zip(xs, xs[1:]))

    def test_consistency_with_integral(self):
        # Solving then integrating must return the target.
        rng = np.random.default_rng(3)
        for _ in range(100):
            v = rng.uniform(0, 5)
            w = rng.uniform(-1, 1)
            dt = rng.uniform(0.5, 4)
            total = v * dt + 0.5 * w * dt * dt
            if total <= 0:
                continue
            target = rng.uniform(0, total)
            x = solve_linear_mass(v, w, target, dt)
            got = v * x + 0.5 * w * x * x
            assert got == pytest.approx(target, abs=1e-9 * max(1, total))
