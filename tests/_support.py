"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

import numpy as np

from repro.core import PiecewiseLinearFunction, TemporalDatabase, TemporalObject


def make_random_database(
    num_objects: int = 30,
    avg_segments: int = 20,
    span: float = 100.0,
    seed: int = 0,
    negative: bool = False,
) -> TemporalDatabase:
    """A random PLF database with non-aligned knots across objects."""
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(num_objects):
        n = max(2, int(rng.integers(avg_segments // 2, avg_segments * 2)))
        times = np.unique(rng.uniform(0, span, n + 1))
        while times.size < 2:
            times = np.unique(rng.uniform(0, span, n + 3))
        low = -5.0 if negative else 0.0
        values = rng.uniform(low, 10.0, times.size)
        objects.append(TemporalObject(i, PiecewiseLinearFunction(times, values)))
    return TemporalDatabase(objects, span=(0.0, span), pad=True)



def random_intervals(database: TemporalDatabase, count: int, seed: int = 0):
    """Random (t1, t2) pairs inside the database's domain."""
    rng = np.random.default_rng(seed)
    t_min, t_max = database.span
    pairs = np.sort(rng.uniform(t_min, t_max, (count, 2)), axis=1)
    return [(float(a), float(b)) for a, b in pairs]


def breakpoints_equivalent(a, b, atol: float = 1e-6) -> bool:
    """True when two breakpoint sets agree up to one boundary point.

    The baseline and segment-driven BREAKPOINTS2 builds can disagree on
    a single breakpoint that sits exactly at a threshold boundary
    (last-ulp float differences decide whether the final eps*M crossing
    exists); both results satisfy Lemma 2, so tests treat them as
    equivalent.
    """
    short, long = (a, b) if a.r <= b.r else (b, a)
    if long.r - short.r > 1:
        return False
    # Every breakpoint of the shorter set must appear in the longer.
    for t in short.times:
        if np.min(np.abs(long.times - t)) > atol:
            return False
    return True
