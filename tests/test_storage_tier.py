"""The durable zero-copy storage tier: segments, catalog, snapshot/open.

The contract under test: ``snapshot(path)`` then ``open(path)`` mounts
the kernel arrays zero-copy (np.memmap), performs **zero** index or
store builds, and answers every query bit-identically to the original
engine — scores, tie-breaks, and modeled IO charges — on every
executor backend.  Durability failures (truncation, corruption,
incompatible versions) surface as clean PersistenceError.
"""

import multiprocessing
import pickle
import sqlite3

import numpy as np
import pytest

import repro
from repro.core import buildcount
from repro.core.queries import TopKQuery
from repro.engine import TemporalRankingEngine
from repro.parallel import get_executor
from repro.storage.catalog import SCHEMA_VERSION, Catalog
from repro.storage.device import BlockDevice, BlockDeviceError
from repro.storage.persistence import PersistenceError
from repro.storage.segments import (
    open_segment,
    read_header,
    write_segment,
    write_store_segment,
)

from _support import make_random_database

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

EXECUTORS = [
    pytest.param("serial", id="serial"),
    pytest.param("thread", id="thread"),
    pytest.param(
        "process",
        id="process",
        marks=pytest.mark.skipif(not _HAS_FORK, reason="needs fork"),
    ),
]


def _queries(db, count=20, k=5, seed=3):
    return repro.random_queries(db, count=count, k=k, seed=seed)


def _results_equal(a, b):
    return a.object_ids == b.object_ids and a.scores == b.scores


# ----------------------------------------------------------------------
# segments
# ----------------------------------------------------------------------
class TestSegments:
    def test_round_trip_bit_identical(self, tmp_path):
        path = tmp_path / "arrays.seg"
        arrays = [
            ("floats", np.linspace(0, 1, 1001)),
            ("ints", np.arange(-5, 500, dtype=np.int64)),
            ("matrix", np.arange(12, dtype=np.float32).reshape(3, 4)),
            ("empty", np.empty(0, dtype=np.float64)),
        ]
        info = write_segment(path, arrays, meta={"note": "hi"})
        assert info.file_bytes == path.stat().st_size
        segment = open_segment(path)
        for name, array in arrays:
            got = segment[name]
            assert got.dtype == array.dtype
            assert got.shape == array.shape
            assert np.array_equal(got, array)
        assert segment.meta["note"] == "hi"
        # Mounted arrays are read-only views of the mapped file.
        with pytest.raises(ValueError):
            segment["floats"][0] = 99.0

    def test_arrays_are_aligned(self, tmp_path):
        path = tmp_path / "aligned.seg"
        write_segment(
            path, [("a", np.arange(3.0)), ("b", np.arange(7.0))]
        )
        info = read_header(path)
        for entry in info.arrays:
            assert entry["abs_offset"] % 64 == 0

    def test_store_segment_round_trips_the_kernel(self, tmp_path):
        from repro.core.plfstore import PLFStore

        db = make_random_database(num_objects=12, avg_segments=8, seed=10)
        store = db.store()
        path = tmp_path / "store.seg"
        write_store_segment(path, store)
        mounted = PLFStore.from_segments(path)
        for name in (
            "knot_times", "knot_values", "offsets", "prefix_masses",
            "starts", "ends", "totals", "object_ids",
        ):
            assert np.array_equal(getattr(mounted, name), getattr(store, name))
        # The mounted functions' prefix arrays ARE memmap slices — the
        # bit-identity guarantee rests on this.
        for orig, fn in zip(store.functions, mounted.functions):
            assert np.array_equal(fn.times, orig.times)
            assert np.array_equal(fn.prefix_masses, orig.prefix_masses)
        assert mounted.segment_path == str(path)

    def test_truncated_segment_is_refused(self, tmp_path):
        path = tmp_path / "trunc.seg"
        write_segment(path, [("a", np.arange(1000.0))])
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(PersistenceError, match="truncated"):
            open_segment(path)

    def test_corrupted_array_fails_its_checksum(self, tmp_path):
        path = tmp_path / "corrupt.seg"
        write_segment(path, [("a", np.arange(1000.0))])
        raw = bytearray(path.read_bytes())
        raw[-8] ^= 0xFF  # flip a bit inside the array data
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError, match="checksum"):
            open_segment(path)

    def test_bad_magic_is_refused(self, tmp_path):
        path = tmp_path / "junk.seg"
        path.write_bytes(b"definitely not a segment file" * 4)
        with pytest.raises(PersistenceError, match="not a repro segment"):
            open_segment(path)

    def test_future_version_is_refused(self, tmp_path):
        from repro.storage.segments import SEGMENT_VERSION

        path = tmp_path / "future.seg"
        write_segment(path, [("a", np.arange(4.0))])
        raw = bytearray(path.read_bytes())
        raw[8:10] = (SEGMENT_VERSION + 1).to_bytes(2, "big")
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError, match="version"):
            open_segment(path)


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_missing_catalog_is_refused(self, tmp_path):
        with pytest.raises(PersistenceError, match="no catalog"):
            Catalog.open(tmp_path / "nope.sqlite")

    def test_garbage_file_is_refused(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"this is not sqlite at all" * 10)
        with pytest.raises(PersistenceError):
            Catalog.open(path)

    def test_schema_version_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        Catalog.create(path, "engine").close()
        conn = sqlite3.connect(str(path))
        with conn:
            conn.execute(
                "UPDATE catalog_meta SET value = ? WHERE key = ?",
                (str(SCHEMA_VERSION + 1), "schema_version"),
            )
        conn.close()
        with pytest.raises(PersistenceError, match="schema version"):
            Catalog.open(path)

    def test_snapshot_with_tampered_schema_refuses_to_open(self, tmp_path):
        db = make_random_database(num_objects=6, avg_segments=5, seed=1)
        TemporalRankingEngine(db).snapshot(tmp_path / "snap")
        conn = sqlite3.connect(str(tmp_path / "snap" / "catalog.sqlite"))
        with conn:
            conn.execute(
                "UPDATE catalog_meta SET value = '999' "
                "WHERE key = 'schema_version'"
            )
        conn.close()
        with pytest.raises(PersistenceError, match="schema version"):
            repro.open(tmp_path / "snap")


# ----------------------------------------------------------------------
# engine snapshot / open
# ----------------------------------------------------------------------
class TestEngineSnapshot:
    def _snapshot_engine(self, tmp_path, seed=20, with_lazy=True):
        db = make_random_database(num_objects=25, avg_segments=10, seed=seed)
        engine = TemporalRankingEngine(db, kmax=15)
        if with_lazy:
            engine.top_k(5.0, 90.0, 3, approximate=True)
            engine.instant_top_k(50.0, 3)
        engine.snapshot(tmp_path / "snap")
        return engine, tmp_path / "snap"

    def test_open_performs_zero_builds(self, tmp_path):
        self._snapshot_engine(tmp_path)
        before = dict(buildcount.counts())
        mounted = repro.open(tmp_path / "snap")
        assert dict(buildcount.counts()) == before
        assert isinstance(mounted, TemporalRankingEngine)
        assert mounted._approximate is not None
        assert mounted._instant is not None

    def test_answers_and_io_charges_bit_identical(self, tmp_path):
        engine, snap = self._snapshot_engine(tmp_path)
        mounted = repro.open(snap)
        for q in _queries(engine.database):
            a = engine.exact.measured_query(q)
            b = mounted.exact.measured_query(q)
            assert _results_equal(a.result, b.result)
            assert a.ios == b.ios
            assert _results_equal(
                engine.top_k(q.t1, q.t2, min(q.k, 15), approximate=True),
                mounted.top_k(q.t1, q.t2, min(q.k, 15), approximate=True),
            )
            assert _results_equal(
                engine.instant_top_k(q.t1, 3), mounted.instant_top_k(q.t1, 3)
            )

    @pytest.mark.parametrize("backend", EXECUTORS)
    def test_mounted_workload_identical_on_every_executor(
        self, tmp_path, backend
    ):
        engine, snap = self._snapshot_engine(tmp_path, with_lazy=False)
        mounted = repro.open(snap)
        batch = np.asarray(
            [(q.t1, q.t2, q.k) for q in _queries(engine.database, count=30)]
        )
        expected = engine.top_k_many(batch)
        got = mounted.top_k_many(batch, executor=get_executor(backend, 2))
        for a, b in zip(expected, got):
            assert _results_equal(a, b)

    def test_mounted_view_pickles_as_a_path(self, tmp_path):
        _, snap = self._snapshot_engine(tmp_path, with_lazy=False)
        mounted = repro.open(snap)
        view = mounted.database.store().csr_view()
        blob = pickle.dumps(view)
        # Process fan-out ships the segment path, not the CSR arrays.
        assert len(blob) < 1024
        clone = pickle.loads(blob)
        assert np.array_equal(clone.knot_times, view.knot_times)
        assert clone.segment == view.segment

    def test_snapshot_after_append_captures_post_append_state(self, tmp_path):
        db = make_random_database(num_objects=10, avg_segments=6, seed=30)
        engine = TemporalRankingEngine(db)
        engine.append(3, 101.0, 7.5)
        engine.append(5, 102.0, 1.25)
        assert engine.epoch == 2
        engine.snapshot(tmp_path / "snap")
        mounted = repro.open(tmp_path / "snap")
        assert mounted.epoch == 2
        q = TopKQuery(10.0, 100.0, 5)
        assert _results_equal(engine.exact.query(q), mounted.exact.query(q))
        # The appended knots made it into the mounted kernel arrays.
        times = mounted.database.store().knot_times
        assert 101.0 in times and 102.0 in times

    def test_engine_open_classmethod_rejects_cluster_dirs(self, tmp_path):
        db = make_random_database(num_objects=8, avg_segments=5, seed=31)
        repro.ObjectPartitionedCluster(db, 2).snapshot(tmp_path / "snap")
        with pytest.raises(PersistenceError, match="not an engine"):
            TemporalRankingEngine.open(tmp_path / "snap")


# ----------------------------------------------------------------------
# worker-side mounting and the owner-pid guard
# ----------------------------------------------------------------------
def _unpickle_then_mutate(blob):
    """Worker task: unpickle a device and try to allocate on it."""
    device = pickle.loads(blob)
    try:
        device.allocate(np.zeros(1))
    except BlockDeviceError:
        return "guarded"
    return "allocated"


def _unpickle_then_read(blob):
    """Worker task: unpickle a device and read its first block."""
    device = pickle.loads(blob)
    return float(np.sum(device.read(0)))


class TestWorkerGuard:
    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork")
    def test_worker_unpickle_keeps_the_coordinator_guard(self):
        # Snapshot-mounting inside a pool worker must NOT trip the
        # "unpickle takes ownership" reset: inside a multiprocessing
        # child the device stays read-only.
        device = BlockDevice()
        device.allocate(np.full(4, 2.5))
        blob = pickle.dumps(device)
        executor = get_executor("process", 1)
        with executor.session(None) as session:
            assert session.map(_unpickle_then_mutate, [blob]) == ["guarded"]
            assert session.map(_unpickle_then_read, [blob]) == [10.0]

    def test_main_process_unpickle_takes_ownership(self):
        device = BlockDevice()
        device.allocate(np.zeros(2))
        clone = pickle.loads(pickle.dumps(device))
        assert clone.allocate(np.zeros(2)) == 1  # not guarded

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork")
    def test_process_fanout_over_a_mounted_store(self, tmp_path):
        db = make_random_database(num_objects=20, avg_segments=8, seed=40)
        TemporalRankingEngine(db).snapshot(tmp_path / "snap")
        mounted = repro.open(tmp_path / "snap")
        batch = np.asarray(
            [(q.t1, q.t2, q.k) for q in _queries(mounted.database, count=25)]
        )
        serial = mounted.top_k_many(batch)
        fanned = mounted.top_k_many(batch, executor=get_executor("process", 2))
        for a, b in zip(serial, fanned):
            assert _results_equal(a, b)


# ----------------------------------------------------------------------
# cluster snapshots
# ----------------------------------------------------------------------
class TestClusterSnapshot:
    @pytest.mark.parametrize("partition", ["object", "time"])
    def test_round_trip_zero_builds_and_identical_protocols(
        self, tmp_path, partition
    ):
        db = make_random_database(num_objects=18, avg_segments=8, seed=50)
        if partition == "object":
            cluster = repro.ObjectPartitionedCluster(db, 3)
        else:
            cluster = repro.TimePartitionedCluster(db, 3)
        cluster.snapshot(tmp_path / "snap")
        before = dict(buildcount.counts())
        mounted = repro.open(tmp_path / "snap")
        assert dict(buildcount.counts()) == before
        assert type(mounted) is type(cluster)
        assert mounted.num_nodes == cluster.num_nodes
        cluster.comm.reset()
        mounted.comm.reset()
        for q in _queries(db, count=12):
            if partition == "object":
                a = cluster.query(q.t1, q.t2, q.k)
                b = mounted.query(q.t1, q.t2, q.k)
            else:
                a = cluster.query_scatter_gather(q.t1, q.t2, q.k)
                b = mounted.query_scatter_gather(q.t1, q.t2, q.k)
            assert _results_equal(a, b)
        assert cluster.comm.snapshot() == mounted.comm.snapshot()

    def test_time_cluster_threshold_protocol_survives_mounting(self, tmp_path):
        db = make_random_database(num_objects=15, avg_segments=8, seed=51)
        cluster = repro.TimePartitionedCluster(db, 3)
        cluster.snapshot(tmp_path / "snap")
        mounted = repro.open(tmp_path / "snap")
        for q in _queries(db, count=8):
            a = cluster.query_threshold(q.t1, q.t2, q.k)
            b = mounted.query_threshold(q.t1, q.t2, q.k)
            assert _results_equal(a, b)

    def test_cluster_open_classmethods_check_kind(self, tmp_path):
        db = make_random_database(num_objects=8, avg_segments=5, seed=52)
        repro.TimePartitionedCluster(db, 2).snapshot(tmp_path / "snap")
        mounted = repro.TimePartitionedCluster.open(tmp_path / "snap")
        assert isinstance(mounted, repro.TimePartitionedCluster)
        with pytest.raises(TypeError):
            repro.ObjectPartitionedCluster.open(tmp_path / "snap")
