"""Unit tests for the external interval tree (EXACT3's substrate)."""

import numpy as np
import pytest

from repro.core.errors import IndexStateError
from repro.storage import BlockDevice
from repro.intervaltree import ExternalIntervalTree


def random_intervals(n=500, span=1000.0, seed=0):
    rng = np.random.default_rng(seed)
    lows = rng.uniform(0, span, n)
    widths = rng.uniform(0.01, span / 10, n)
    highs = np.minimum(lows + widths, span)
    values = np.arange(n, dtype=np.float64).reshape(-1, 1)
    return lows, highs, values


def brute_stab(lows, highs, t):
    return set(np.flatnonzero((lows <= t) & (t <= highs)).tolist())


class TestBuildAndStab:
    def test_stab_matches_brute_force(self):
        lows, highs, values = random_intervals(800, seed=1)
        tree = ExternalIntervalTree(BlockDevice(block_bytes=512), value_columns=1)
        tree.build(lows, highs, values)
        rng = np.random.default_rng(2)
        for _ in range(60):
            t = float(rng.uniform(-10, 1010))
            rows = tree.stab(t)
            got = set(rows[:, 2].astype(int).tolist())
            assert got == brute_stab(lows, highs, t)

    def test_stab_at_exact_endpoints(self):
        lows = np.asarray([0.0, 5.0, 5.0])
        highs = np.asarray([5.0, 10.0, 7.0])
        tree = ExternalIntervalTree(BlockDevice(), value_columns=1)
        tree.build(lows, highs, np.arange(3.0).reshape(-1, 1))
        got = set(tree.stab(5.0)[:, 2].astype(int).tolist())
        assert got == {0, 1, 2}  # closed intervals

    def test_invariants(self):
        lows, highs, values = random_intervals(600, seed=3)
        tree = ExternalIntervalTree(BlockDevice(block_bytes=512), value_columns=1)
        tree.build(lows, highs, values)
        tree.check_invariants()

    def test_rejects_reversed_intervals(self):
        tree = ExternalIntervalTree(BlockDevice(), value_columns=1)
        with pytest.raises(ValueError):
            tree.build(
                np.asarray([1.0]), np.asarray([0.0]), np.asarray([[0.0]])
            )

    def test_unbuilt_raises(self):
        tree = ExternalIntervalTree(BlockDevice(), value_columns=1)
        with pytest.raises(IndexStateError):
            tree.stab(1.0)

    def test_empty_result(self):
        tree = ExternalIntervalTree(BlockDevice(), value_columns=1)
        tree.build(np.asarray([5.0]), np.asarray([6.0]), np.asarray([[0.0]]))
        assert tree.stab(100.0).shape[0] == 0


class TestSizeAndIO:
    def test_linear_size(self):
        # Doubling N should roughly double the footprint (leaf bucketing
        # keeps the structure O(N/B) blocks, not O(N) blocks).
        sizes = []
        for n in (2000, 4000):
            lows, highs, values = random_intervals(n, seed=4)
            dev = BlockDevice()
            tree = ExternalIntervalTree(dev, value_columns=1)
            tree.build(lows, highs, values)
            sizes.append(dev.size_bytes)
        assert sizes[1] <= sizes[0] * 3.0

    def test_stab_io_much_less_than_blocks(self):
        lows, highs, values = random_intervals(5000, seed=5)
        dev = BlockDevice()
        tree = ExternalIntervalTree(dev, value_columns=1)
        tree.build(lows, highs, values)
        dev.stats.reset()
        rows = tree.stab(500.0)
        total_blocks = dev.num_blocks
        assert dev.stats.reads < total_blocks / 4
        # IO is at most height + answer/blocking + slack.
        assert dev.stats.reads <= 30 + rows.shape[0]


class TestPartitionStab:
    def test_partitioned_domain_returns_one_per_object(self):
        """EXACT3's invariant: per-object elementary intervals partition
        [0, T], so any stab returns exactly one interval per object
        (two at shared endpoints, which the caller dedups)."""
        rng = np.random.default_rng(6)
        lows_all, highs_all, obj_all = [], [], []
        for obj in range(20):
            cuts = np.unique(np.concatenate([[0.0], rng.uniform(0, 100, 9), [100.0]]))
            lows_all.append(cuts[:-1])
            highs_all.append(cuts[1:])
            obj_all.append(np.full(cuts.size - 1, obj, dtype=np.float64))
        lows = np.concatenate(lows_all)
        highs = np.concatenate(highs_all)
        values = np.concatenate(obj_all).reshape(-1, 1)
        tree = ExternalIntervalTree(BlockDevice(block_bytes=512), value_columns=1)
        tree.build(lows, highs, values)
        for t in rng.uniform(0.001, 99.999, 40):
            rows = tree.stab(float(t))
            objs = rows[:, 2].astype(int)
            unique = np.unique(objs)
            assert unique.size == 20
            # Duplicates only at shared endpoints (measure zero here).
            assert rows.shape[0] in (20, 21, 22)


class TestInsert:
    def test_insert_then_stab(self):
        lows, highs, values = random_intervals(100, seed=7)
        tree = ExternalIntervalTree(BlockDevice(), value_columns=1)
        tree.build(lows, highs, values)
        tree.insert(2000.0, 2010.0, np.asarray([999.0]))
        rows = tree.stab(2005.0)
        assert rows.shape[0] == 1
        assert rows[0, 2] == 999.0

    def test_rebuild_folds_overflow(self):
        lows, highs, values = random_intervals(40, seed=8)
        tree = ExternalIntervalTree(
            BlockDevice(), value_columns=1, rebuild_fraction=0.1
        )
        tree.build(lows, highs, values)
        for i in range(30):
            tree.insert(3000.0 + i, 3001.0 + i, np.asarray([1000.0 + i]))
        # Enough inserts to trigger at least one rebuild.
        assert tree.num_intervals == 70
        tree.check_invariants()
        rows = tree.stab(3000.5)
        assert rows.shape[0] >= 1

    def test_insert_before_build_raises(self):
        tree = ExternalIntervalTree(BlockDevice(), value_columns=1)
        with pytest.raises(IndexStateError):
            tree.insert(0.0, 1.0, np.asarray([0.0]))
