"""Unit tests for piecewise polynomial functions (Section 4 extension)."""

import numpy as np
import pytest

from repro.core.errors import InvalidFunctionError
from repro.core.plf import PiecewiseLinearFunction
from repro.core.ppf import PiecewisePolynomialFunction, from_plf, square_plf


class TestConstruction:
    def test_rejects_bad_coefficient_shape(self):
        with pytest.raises(InvalidFunctionError):
            PiecewisePolynomialFunction([0, 1, 2], np.zeros((1, 2)))

    def test_rejects_unsorted_times(self):
        with pytest.raises(InvalidFunctionError):
            PiecewisePolynomialFunction([0, 2, 1], np.zeros((2, 2)))

    def test_shape(self):
        ppf = PiecewisePolynomialFunction([0, 1, 3], np.asarray([[1.0, 0], [2.0, 1]]))
        assert ppf.num_pieces == 2
        assert ppf.degree == 1
        assert ppf.start == 0 and ppf.end == 3


class TestEvaluation:
    def test_constant_piece(self):
        ppf = PiecewisePolynomialFunction([0, 2], np.asarray([[3.0]]))
        assert ppf.value(1) == 3.0
        assert ppf.integral(0, 2) == pytest.approx(6)

    def test_quadratic_piece(self):
        # f(t) = t^2 on [0, 2] (local coords coincide with global).
        ppf = PiecewisePolynomialFunction([0, 2], np.asarray([[0.0, 0.0, 1.0]]))
        assert ppf.value(1.5) == pytest.approx(2.25)
        assert ppf.integral(0, 2) == pytest.approx(8 / 3)

    def test_zero_outside_span(self):
        ppf = PiecewisePolynomialFunction([0, 2], np.asarray([[3.0]]))
        assert ppf.value(-1) == 0.0
        assert ppf.value(3) == 0.0

    def test_cumulative_clamps(self):
        ppf = PiecewisePolynomialFunction([0, 2], np.asarray([[3.0]]))
        assert ppf.cumulative(-1) == 0.0
        assert ppf.cumulative(10) == pytest.approx(6)


class TestFromPlf:
    def test_values_match(self, tiny_plf):
        ppf = from_plf(tiny_plf)
        for t in np.linspace(0, 8, 81):
            assert ppf.value(float(t)) == pytest.approx(tiny_plf.value(float(t)))

    def test_integrals_match(self, tiny_plf):
        ppf = from_plf(tiny_plf)
        rng = np.random.default_rng(2)
        for _ in range(30):
            a, b = np.sort(rng.uniform(0, 8, 2))
            assert ppf.integral(float(a), float(b)) == pytest.approx(
                tiny_plf.integral(float(a), float(b)), abs=1e-10
            )


class TestSquarePlf:
    def test_pointwise_square(self, tiny_plf):
        sq = square_plf(tiny_plf)
        for t in np.linspace(0, 8, 81):
            assert sq.value(float(t)) == pytest.approx(tiny_plf.value(float(t)) ** 2)

    def test_integral_matches_quadrature(self):
        rng = np.random.default_rng(9)
        times = np.unique(rng.uniform(0, 10, 12))
        values = rng.uniform(-3, 3, times.size)
        plf = PiecewiseLinearFunction(times, values)
        sq = square_plf(plf)
        xs = np.linspace(times[0], times[-1], 100001)
        expected = np.trapezoid(plf.value_many(xs) ** 2, xs)
        assert sq.total_mass == pytest.approx(expected, rel=1e-4)

    def test_square_is_nonnegative(self):
        plf = PiecewiseLinearFunction([0, 1, 2], [-4, 4, -4])
        sq = square_plf(plf)
        for t in np.linspace(0, 2, 41):
            assert sq.value(float(t)) >= 0
