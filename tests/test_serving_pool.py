"""Process-pool serving suite: pooled execution is a pure *where* change.

The contract under test: dispatching the coordinator's micro-batches
to a :class:`~repro.serving.pool.ServingProcessPool` (worker processes
over mmap-mounted snapshots) changes which core executes a batch but
never what is answered — answers, tie-breaks, and modeled IO charges
are bit-identical to the direct single-thread path, across
engine/instant/cluster backends and worker counts, including mid-run
appends (epoch bump -> pool resync -> worker re-mount) and bounded
shutdown with pool batches in flight.
"""

import asyncio

import numpy as np
import pytest

from repro.core.errors import CoordinatorShutdown
from repro.core.queries import TopKQuery
from repro.datasets import sample_workload
from repro.engine import TemporalRankingEngine
from repro.serving import (
    ClusterBackend,
    EngineBackend,
    InstantBackend,
    ServingCoordinator,
    ServingProcessPool,
)
from repro.storage.snapshot import open_served, snapshot_any

from _support import make_random_database

KMAX = 20


@pytest.fixture(scope="module")
def db():
    return make_random_database(num_objects=30, avg_segments=15, seed=31)


@pytest.fixture(scope="module")
def engine(db):
    eng = TemporalRankingEngine(db, kmax=KMAX)
    t1, t2 = db.span
    eng.top_k(t1, t2, 3, approximate=True)
    eng.instant_top_k(0.5 * (t1 + t2), 3)
    return eng


def serve_all(coordinator_factory, triples):
    async def main():
        coordinator = coordinator_factory()
        async with coordinator:
            answers = await asyncio.gather(*[
                coordinator.top_k(t1, t2, k) for t1, t2, k in triples
            ])
        return coordinator, list(answers)

    return asyncio.run(main())


def workload_triples(db, count=24, seed=5):
    batch = sample_workload(db, count=count, kmax=10, seed=seed)
    return [
        (float(a), float(b), int(k))
        for a, b, k in zip(batch.t1s, batch.t2s, batch.ks)
    ]


def arrays(triples):
    t1s = np.array([t[0] for t in triples])
    t2s = np.array([t[1] for t in triples])
    ks = np.array([t[2] for t in triples])
    return t1s, t2s, ks


# ----------------------------------------------------------------------
# equivalence: pooled answers == direct serve_many
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_pool_matches_direct_engine_exact(db, engine, tmp_path, workers):
    backend = EngineBackend(engine)
    triples = workload_triples(db)
    direct = backend.serve_many(*arrays(triples))
    coordinator, answers = serve_all(
        lambda: ServingCoordinator(
            backend,
            max_batch=6,
            max_delay=0.001,
            cache_size=0,
            workers=workers,
            pool_dir=tmp_path,
        ),
        triples,
    )
    assert all(a == d for a, d in zip(answers, direct))
    if workers > 1:
        assert coordinator.stats.pool_dispatches >= 1
        # Startup warm: every worker mounts exact3 build-replay-ready.
        assert coordinator.stats.warmups >= workers
    else:
        # workers=1 must stay the single-thread path: no pool at all.
        assert coordinator.stats.pool_dispatches == 0
        assert coordinator.stats.warmups == 0


@pytest.mark.parametrize(
    "kind", ["engine-appx", "instant", "cluster-object", "cluster-time"]
)
def test_pool_matches_direct_across_backends(db, engine, tmp_path, kind):
    if kind == "engine-appx":
        backend = EngineBackend(engine, approximate=True)
        triples = workload_triples(db)
    elif kind == "instant":
        backend = InstantBackend(engine)
        rng = np.random.default_rng(7)
        ts = rng.uniform(db.t_min, db.t_max, 16)
        triples = [(float(t), float(t), 5) for t in ts]
    elif kind == "cluster-object":
        backend = ClusterBackend(engine.cluster(3))
        triples = workload_triples(db, count=16)
    else:
        backend = ClusterBackend(
            engine.cluster(3, partition="time"),
            protocol="threshold",
            batch_size=4,
        )
        triples = workload_triples(db, count=16)
    direct = backend.serve_many(*arrays(triples))
    coordinator, answers = serve_all(
        lambda: ServingCoordinator(
            backend,
            max_batch=6,
            max_delay=0.001,
            cache_size=0,
            workers=2,
            pool_dir=tmp_path,
        ),
        triples,
    )
    assert all(a == d for a, d in zip(answers, direct))
    assert coordinator.stats.pool_dispatches >= 1
    assert coordinator.stats.warmups >= 2


def test_pool_warmups_count_appx_indexes(db, engine, tmp_path):
    """An approximate spec warms two structures per mount (exact3 +
    APPX2+), replayed from the catalog's recorded index builds."""
    backend = EngineBackend(engine, approximate=True)
    pool = ServingProcessPool(backend, workers=2, root=tmp_path)
    try:
        assert pool.startup_warmups >= 2
        assert pool.startup_warmups % 2 == 0
    finally:
        pool.close()


# ----------------------------------------------------------------------
# IO-charge equivalence: mounted serving backend == live engine
# ----------------------------------------------------------------------
def test_open_served_answers_and_io_charges_identical(db, engine, tmp_path):
    """The worker-side mount answers with bit-identical modeled IO.

    Worker processes' IO counters are not observable cross-process, so
    the IO half of the equivalence contract is asserted on the same
    mount path the workers use: ``open_served`` over the pool's
    snapshot, then per-query measured IO vs the live engine.
    """
    backend = EngineBackend(engine)
    backend.prepare_for_pool()
    snap = tmp_path / "snap"
    snapshot_any(backend.snapshot_target(), snap)
    served, warmups = open_served(snap, backend.pool_spec())
    assert warmups >= 1
    triples = workload_triples(db, count=12)
    direct = backend.serve_many(*arrays(triples))
    mounted = served.serve_many(*arrays(triples))
    assert all(a == b for a, b in zip(direct, mounted))
    for t1, t2, k in triples[:6]:
        query = TopKQuery(t1, t2, k)
        live = engine.exact.measured_query(query)
        mount = served.engine.exact.measured_query(query)
        assert live.result == mount.result
        assert live.ios == mount.ios


# ----------------------------------------------------------------------
# epoch protocol: append -> resync -> re-mount
# ----------------------------------------------------------------------
def test_pool_append_resyncs_and_remounts(tmp_path):
    database = make_random_database(num_objects=20, avg_segments=10, seed=3)
    engine = TemporalRankingEngine(database, kmax=KMAX)
    backend = EngineBackend(engine)
    t1, t2 = 10.0, 60.0

    async def main():
        coordinator = ServingCoordinator(
            backend,
            max_batch=4,
            max_delay=0.001,
            workers=2,
            pool_dir=tmp_path,
        )
        async with coordinator:
            before = await coordinator.top_k(t1, t2, 5)
            engine.append(3, database.t_max + 5.0, 500.0)
            after = await coordinator.top_k(t1, t2, 5)
        return before, after, coordinator

    before, after, coordinator = asyncio.run(main())
    # The post-append answer must match the live (post-append) engine.
    assert after == engine.top_k(t1, t2, 5)
    assert coordinator.stats.pool_resyncs == 1
    assert coordinator.stats.pool_remounts >= 1
    # Re-mounts re-warm: warmups grew past the two startup mounts.
    assert coordinator.stats.warmups > 2


def test_pool_resync_is_idempotent(db, engine, tmp_path):
    backend = EngineBackend(engine)
    epoch = engine.epoch
    pool = ServingProcessPool(backend, workers=2, root=tmp_path)
    try:
        assert pool.in_sync()
        assert pool.resync() is False
        assert pool.epoch == epoch
        results, info = pool.submit(
            np.array([10.0]), np.array([60.0]), np.array([5])
        ).result()
        assert results[0] == engine.top_k(10.0, 60.0, 5)
    finally:
        pool.close()


def test_pool_prunes_superseded_snapshots(tmp_path):
    database = make_random_database(num_objects=15, avg_segments=8, seed=9)
    engine = TemporalRankingEngine(database, kmax=KMAX)
    backend = EngineBackend(engine)
    pool = ServingProcessPool(backend, workers=1, root=tmp_path)
    try:
        for step in range(3):
            engine.append(step, database.t_max + 1.0 + step, 50.0)
            assert pool.resync() is True
        dirs = sorted(p.name for p in tmp_path.glob("epoch_*"))
        # Current + immediately previous survive; older epochs pruned.
        assert dirs == ["epoch_2", "epoch_3"]
        assert pool.resyncs == 3
    finally:
        pool.close()


# ----------------------------------------------------------------------
# drain / bounded shutdown with in-flight pool batches
# ----------------------------------------------------------------------
def test_pool_stop_drains_inflight_batches(db, engine, tmp_path):
    """Unbounded stop answers everything even with slow pool batches."""
    backend = EngineBackend(engine)
    pool = ServingProcessPool(
        backend, workers=2, root=tmp_path, worker_delay=0.05
    )
    triples = workload_triples(db, count=10)
    direct = backend.serve_many(*arrays(triples))

    async def main():
        coordinator = ServingCoordinator(
            backend, max_batch=2, max_delay=0.0, cache_size=0, pool=pool
        )
        await coordinator.start()
        futures = [
            asyncio.ensure_future(coordinator.top_k(t1, t2, k))
            for t1, t2, k in triples
        ]
        await asyncio.sleep(0)
        await coordinator.stop()
        return [future.result() for future in futures]

    answers = asyncio.run(main())
    assert all(a == d for a, d in zip(answers, direct))


def test_pool_bounded_close_fails_pending(db, engine, tmp_path):
    """A timed-out close fails unanswered requests instead of hanging,
    with a pool batch genuinely in flight on a worker process."""
    backend = EngineBackend(engine)
    pool = ServingProcessPool(
        backend, workers=1, root=tmp_path, worker_delay=0.5
    )

    async def main():
        coordinator = ServingCoordinator(
            backend, max_batch=1, max_delay=0.0, cache_size=0, pool=pool
        )
        await coordinator.start()
        future = asyncio.ensure_future(coordinator.top_k(10.0, 60.0, 5))
        await asyncio.sleep(0.05)  # let the batch dispatch to the pool
        await coordinator.close(drain_timeout=0.01)
        return future, coordinator

    future, coordinator = asyncio.run(main())
    assert isinstance(future.exception(), CoordinatorShutdown)
    assert coordinator.stats.failed == 1


# ----------------------------------------------------------------------
# metrics (Prometheus-style counters)
# ----------------------------------------------------------------------
def test_metrics_flat_dict(db, engine, tmp_path):
    backend = EngineBackend(engine)
    triples = workload_triples(db, count=8)
    coordinator, _ = serve_all(
        lambda: ServingCoordinator(
            backend,
            max_batch=4,
            max_delay=0.001,
            workers=2,
            pool_dir=tmp_path,
        ),
        triples,
    )
    metrics = coordinator.metrics()
    assert metrics["repro_serving_requests_total"] == len(triples)
    assert metrics["repro_serving_workers_gauge"] == 2
    assert metrics["repro_serving_pool_dispatches_total"] >= 1
    assert metrics["repro_serving_warmups_total"] >= 2
    assert all(key.startswith("repro_serving_") for key in metrics)
    assert all(isinstance(v, (int, float)) for v in metrics.values())
    assert (
        metrics["repro_serving_batches_total"] == coordinator.stats.batches
    )


def test_metrics_single_thread_pool_counters_zero(db, engine):
    backend = EngineBackend(engine)
    triples = workload_triples(db, count=6)
    coordinator, _ = serve_all(
        lambda: ServingCoordinator(backend, max_batch=4, max_delay=0.001),
        triples,
    )
    metrics = coordinator.metrics()
    assert metrics["repro_serving_pool_dispatches_total"] == 0
    assert metrics["repro_serving_pool_resyncs_total"] == 0
    assert metrics["repro_serving_pool_remounts_total"] == 0
    assert metrics["repro_serving_warmups_total"] == 0
    assert metrics["repro_serving_workers_gauge"] == 1
    assert metrics["repro_serving_pipeline_depth_gauge"] == 2


# ----------------------------------------------------------------------
# result cache composes with the pool
# ----------------------------------------------------------------------
def test_pool_serving_with_cache_hits(db, engine, tmp_path):
    backend = EngineBackend(engine)
    triples = workload_triples(db, count=6)
    repeated = triples + triples

    async def main():
        coordinator = ServingCoordinator(
            backend,
            max_batch=32,
            max_delay=0.001,
            cache_size=64,
            workers=2,
            pool_dir=tmp_path,
        )
        async with coordinator:
            first = [
                await coordinator.top_k(t1, t2, k) for t1, t2, k in triples
            ]
            second = [
                await coordinator.top_k(t1, t2, k) for t1, t2, k in triples
            ]
        return coordinator, first, second

    coordinator, first, second = asyncio.run(main())
    direct = backend.serve_many(*arrays(repeated))
    assert all(a == d for a, d in zip(first + second, direct))
    assert coordinator.stats.cache_hits >= 1
