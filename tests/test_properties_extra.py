"""Additional property-based tests (hypothesis) for higher layers."""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.storage import BlockDevice
from repro.approximate import build_breakpoints1, build_breakpoints2, build_breakpoints2_baseline
from repro.approximate.dyadic import DyadicIndex
from repro.holistic import interval_quantile, measure_below

from test_properties import database_strategy, plf_strategy  # reuse strategies
from _support import breakpoints_equivalent


class TestQuantileProperties:
    @settings(max_examples=25, deadline=None)
    @given(plf_strategy(), st.floats(0.05, 1.0))
    def test_quantile_measure_round_trip(self, plf, phi):
        """mu(quantile(phi)) >= phi * |interval| (definition of inf)."""
        t1, t2 = plf.start, plf.end
        assume(t2 - t1 > 1e-6)
        q = interval_quantile(plf, t1, t2, phi)
        mu = measure_below(plf, t1, t2, q)
        assert mu >= phi * (t2 - t1) - 1e-6 * (t2 - t1)

    @settings(max_examples=25, deadline=None)
    @given(plf_strategy())
    def test_quantile_bounded_by_extremes(self, plf):
        t1, t2 = plf.start, plf.end
        assume(t2 - t1 > 1e-6)
        lo = min(0.0, float(plf.values.min()))
        hi = float(plf.values.max())
        q = interval_quantile(plf, t1, t2, 0.5)
        assert lo - 1e-9 <= q <= hi + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(plf_strategy(), st.floats(0, 100), st.floats(0.5, 50))
    def test_measure_additive_in_interval(self, plf, start, width):
        """mu over [a,b] + mu over [b,c] == mu over [a,c] at any v."""
        a = start
        b = a + width / 2
        c = a + width
        for v in (0.0, 2.5, 5.0, 11.0):
            whole = measure_below(plf, a, c, v)
            parts = measure_below(plf, a, b, v) + measure_below(plf, b, c, v)
            assert abs(whole - parts) <= 1e-6 * max(1.0, width)


class TestBreakpointProperties:
    @settings(max_examples=12, deadline=None)
    @given(database_strategy(), st.floats(0.05, 0.5))
    def test_segment_driven_equals_baseline(self, db, epsilon):
        assume(db.total_mass > 1e-6)
        fast = build_breakpoints2(db, epsilon)
        slow = build_breakpoints2_baseline(db, epsilon)
        assert breakpoints_equivalent(fast, slow)

    @settings(max_examples=12, deadline=None)
    @given(database_strategy(), st.floats(0.05, 0.4))
    def test_b2_never_more_breakpoints_than_b1(self, db, epsilon):
        assume(db.total_mass > 1e-6)
        b1 = build_breakpoints1(db, epsilon=epsilon)
        b2 = build_breakpoints2(db, epsilon)
        assert b2.r <= b1.r + 1  # +1 slack for boundary dedup


class TestDyadicProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.data_too_large],
    )
    @given(database_strategy(), st.integers(5, 30), st.data())
    def test_decomposition_always_exact_cover(self, db, r, data):
        assume(db.total_mass > 1e-6)
        bp = build_breakpoints1(db, r=r)
        index = DyadicIndex(BlockDevice(), bp, kmax=4).build(db)
        gaps = bp.r - 1
        assume(gaps >= 2)
        j1 = data.draw(st.integers(0, gaps - 1))
        j2 = data.draw(st.integers(j1 + 1, gaps))
        nodes = index.decompose(j1, j2)
        covered = sorted((n.lo, n.hi) for n in nodes)
        assert covered[0][0] == j1 and covered[-1][1] == j2
        for (_, hi_a), (lo_b, _) in zip(covered, covered[1:]):
            assert hi_a == lo_b
        assert len(nodes) <= 2 * np.ceil(np.log2(gaps)) + 2
