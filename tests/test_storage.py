"""Unit tests for the simulated block device, IO stats, and LRU cache."""

import pytest

from repro.storage import (
    BlockDevice,
    BlockDeviceError,
    LRUCache,
    IOStats,
    entries_per_block,
)


class TestEntriesPerBlock:
    def test_basic(self):
        assert entries_per_block(16, 4096) == 256
        assert entries_per_block(48, 4096) == 85

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            entries_per_block(0)

    def test_rejects_oversized_entry(self):
        with pytest.raises(ValueError):
            entries_per_block(8192, 4096)


class TestBlockDevice:
    def test_allocate_read_write(self):
        dev = BlockDevice()
        bid = dev.allocate("hello")
        assert dev.read(bid) == "hello"
        dev.write(bid, "world")
        assert dev.read(bid) == "world"

    def test_io_accounting(self):
        dev = BlockDevice()
        bid = dev.allocate([1, 2, 3])  # 1 write
        dev.read(bid)  # 1 read
        dev.read(bid)  # 1 read
        dev.write(bid, [4])  # 1 write
        assert dev.stats.reads == 2
        assert dev.stats.writes == 2
        assert dev.stats.allocations == 1
        assert dev.stats.total == 4

    def test_invalid_block(self):
        dev = BlockDevice()
        with pytest.raises(BlockDeviceError):
            dev.read(99)

    def test_free(self):
        dev = BlockDevice()
        bid = dev.allocate("x")
        dev.free(bid)
        with pytest.raises(BlockDeviceError):
            dev.read(bid)
        assert dev.num_blocks == 0

    def test_size_bytes(self):
        dev = BlockDevice(block_bytes=4096)
        for _ in range(5):
            dev.allocate(None)
        assert dev.size_bytes == 5 * 4096

    def test_allocate_run_is_sequential(self):
        dev = BlockDevice()
        ids = dev.allocate_run(["a", "b", "c"])
        assert ids == sorted(ids)
        assert [dev.read(i) for i in ids] == ["a", "b", "c"]

    def test_shared_stats(self):
        shared = IOStats()
        dev1 = BlockDevice(stats=shared)
        dev2 = BlockDevice(stats=shared)
        dev1.allocate(1)
        dev2.allocate(2)
        assert shared.writes == 2

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockDevice(block_bytes=0)


class TestIOStats:
    def test_measure_context(self):
        dev = BlockDevice()
        bid = dev.allocate("x")
        with dev.stats.measure() as cost:
            dev.read(bid)
            dev.read(bid)
        assert cost.reads == 2
        assert cost.writes == 0
        assert cost.total == 2

    def test_snapshot_diff(self):
        stats = IOStats()
        before = stats.snapshot()
        stats.record_read()
        stats.record_write()
        delta = stats.snapshot() - before
        assert delta.reads == 1 and delta.writes == 1

    def test_reset(self):
        stats = IOStats()
        stats.record_read()
        stats.reset()
        assert stats.total == 0


class TestLRUCache:
    def test_hits_are_free(self):
        cache = LRUCache(capacity_blocks=4)
        dev = BlockDevice(cache=cache)
        bid = dev.allocate("x")  # enters cache on allocate
        before = dev.stats.reads
        dev.read(bid)
        assert dev.stats.reads == before  # cache hit: no IO charged
        assert dev.stats.cache_hits == 1

    def test_eviction(self):
        cache = LRUCache(capacity_blocks=2)
        dev = BlockDevice(cache=cache)
        ids = [dev.allocate(i) for i in range(3)]
        # Block 0 was evicted (LRU); reading it costs an IO.
        before = dev.stats.reads
        dev.read(ids[0])
        assert dev.stats.reads == before + 1

    def test_drop_cache(self):
        cache = LRUCache(capacity_blocks=4)
        dev = BlockDevice(cache=cache)
        bid = dev.allocate("x")
        dev.drop_cache()
        before = dev.stats.reads
        dev.read(bid)
        assert dev.stats.reads == before + 1

    def test_lru_order_refresh(self):
        cache = LRUCache(capacity_blocks=2)
        dev = BlockDevice(cache=cache)
        a = dev.allocate("a")
        b = dev.allocate("b")
        dev.read(a)  # refresh a
        dev.allocate("c")  # evicts b, not a
        before = dev.stats.reads
        dev.read(a)
        assert dev.stats.reads == before  # still cached

    def test_invalidate_on_free(self):
        cache = LRUCache(capacity_blocks=4)
        dev = BlockDevice(cache=cache)
        bid = dev.allocate("x")
        dev.free(bid)
        assert bid not in cache

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)
