"""Unit tests for top-k answer sets and selection helpers."""

import numpy as np

from repro.core.results import (
    RankedItem,
    TopKResult,
    select_top_k,
    top_k_from_arrays,
)


class TestTopKResult:
    def test_from_pairs_orders_descending(self):
        res = TopKResult.from_pairs([(1, 5.0), (2, 9.0), (3, 7.0)])
        assert res.object_ids == [2, 3, 1]
        assert res.scores == [9.0, 7.0, 5.0]

    def test_tie_break_by_id(self):
        res = TopKResult.from_pairs([(9, 5.0), (2, 5.0), (4, 5.0)])
        assert res.object_ids == [2, 4, 9]

    def test_indexing_and_iteration(self):
        res = TopKResult.from_pairs([(1, 2.0), (2, 1.0)])
        assert res[0] == RankedItem(1, 2.0)
        assert list(res)[1].object_id == 2
        assert len(res) == 2

    def test_truncated(self):
        res = TopKResult.from_pairs([(i, float(i)) for i in range(10)])
        assert len(res.truncated(3)) == 3
        assert res.truncated(3).object_ids == [9, 8, 7]

    def test_item_unpacking(self):
        obj, score = RankedItem(4, 2.5)
        assert obj == 4 and score == 2.5

    def test_empty(self):
        assert len(TopKResult()) == 0
        assert TopKResult().object_ids == []


class TestLazyColumnarResult:
    def test_from_columns_materializes_items_on_demand(self):
        res = TopKResult.from_columns([4, 1], [9.0, 3.5])
        # Columns answer length/ids/scores without building items.
        assert len(res) == 2
        assert res.object_ids == [4, 1]
        assert res.scores == [9.0, 3.5]
        assert res._items is None
        assert res[0] == RankedItem(4, 9.0)
        assert res._items is None  # single-rank access stays columnar
        assert list(res) == [RankedItem(4, 9.0), RankedItem(1, 3.5)]
        assert res._items is not None

    def test_columnar_and_item_forms_compare_equal(self):
        columnar = TopKResult.from_columns([2, 7], [5.0, 1.0])
        itemized = TopKResult((RankedItem(2, 5.0), RankedItem(7, 1.0)))
        assert columnar == itemized
        assert itemized == columnar
        assert not columnar != itemized
        assert hash(columnar) == hash(itemized)
        assert columnar != TopKResult.from_columns([2, 7], [5.0, 2.0])
        assert columnar != TopKResult.from_columns([2], [5.0])

    def test_truncated_and_slices(self):
        res = TopKResult.from_columns([3, 1, 8], [7.0, 6.0, 5.0])
        assert res.truncated(2) == TopKResult.from_columns([3, 1], [7.0, 6.0])
        assert res[1:] == (RankedItem(1, 6.0), RankedItem(8, 5.0))

    def test_pickle_round_trip(self):
        import pickle

        for res in (
            TopKResult.from_columns([5, 2], [4.0, 3.0]),
            TopKResult((RankedItem(5, 4.0), RankedItem(2, 3.0))),
            TopKResult(),
        ):
            clone = pickle.loads(pickle.dumps(res))
            assert clone == res
            assert clone.items == res.items

    def test_mutating_returned_lists_does_not_corrupt(self):
        res = TopKResult.from_columns([1, 2], [2.0, 1.0])
        ids = res.object_ids
        ids.append(99)
        assert res.object_ids == [1, 2]


class TestSelectTopK:
    def test_basic(self):
        res = select_top_k([(1, 1.0), (2, 3.0), (3, 2.0)], 2)
        assert res.object_ids == [2, 3]

    def test_k_larger_than_input(self):
        res = select_top_k([(1, 1.0)], 5)
        assert res.object_ids == [1]

    def test_k_zero(self):
        assert len(select_top_k([(1, 1.0)], 0)) == 0

    def test_ties_prefer_lower_id(self):
        res = select_top_k([(5, 2.0), (1, 2.0), (3, 2.0)], 2)
        assert res.object_ids == [1, 3]

    def test_matches_full_sort(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n = int(rng.integers(1, 60))
            pairs = [(int(i), float(rng.integers(0, 8))) for i in range(n)]
            k = int(rng.integers(1, n + 1))
            expected = sorted(pairs, key=lambda p: (-p[1], p[0]))[:k]
            got = select_top_k(pairs, k)
            assert [(it.object_id, it.score) for it in got] == expected


class TestTopKFromArrays:
    def test_matches_select_top_k(self):
        rng = np.random.default_rng(1)
        for _ in range(25):
            n = int(rng.integers(1, 80))
            ids = np.arange(n)
            scores = rng.integers(0, 6, n).astype(float)
            k = int(rng.integers(1, n + 1))
            a = top_k_from_arrays(ids, scores, k)
            b = select_top_k(zip(ids.tolist(), scores.tolist()), k)
            assert a.object_ids == b.object_ids
            assert a.scores == b.scores

    def test_empty_arrays(self):
        assert len(top_k_from_arrays(np.empty(0, int), np.empty(0), 3)) == 0
