"""Equivalence suite for the partition-native distributed serving tier.

The batched cluster paths must reproduce, for a mixed workload, the
preserved scalar protocols *exactly*:

* answers — object ids, scores (bitwise), and tie-break order,
* per-node modeled IO charges over the workload,
* :class:`~repro.distributed.comm.CommStats` totals (messages, pairs,
  hence bytes),
* across serial / thread / process executors, both for the per-node
  index-build fan-out and for the query fan-out forwarded to the
  nodes' ``query_many``.

Also covers: the partitioners' disjoint-cover/determinism properties,
``num_nodes`` edge cases, the threshold algorithm's per-round comm
records on tie-heavy data, and the columnar k-way merge.
"""

import multiprocessing
from functools import partial

import numpy as np
import pytest

from repro.approximate.methods import Appx2Plus
from repro.core import PiecewiseLinearFunction, TemporalObject
from repro.core.database import TemporalDatabase
from repro.core.results import TopKResult, merge_top_k, select_top_k
from repro.datasets import sample_workload
from repro.distributed import (
    ObjectPartitionedCluster,
    TimePartitionedCluster,
    hash_partition,
    time_range_partition,
)
from repro.engine import TemporalRankingEngine
from repro.parallel import get_executor

from _support import make_random_database

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

EXECUTOR_MATRIX = [
    pytest.param("serial", 1, id="serial"),
    pytest.param("thread", 2, id="thread2"),
    pytest.param(
        "process",
        2,
        id="process2",
        marks=pytest.mark.skipif(not _HAS_FORK, reason="needs fork"),
    ),
]


@pytest.fixture(scope="module")
def db():
    return make_random_database(num_objects=50, avg_segments=20, seed=33)


@pytest.fixture(scope="module")
def batch(db):
    return sample_workload(db, count=40, kmax=12, seed=7)


def tie_heavy_database(num_objects=30):
    """Constant-level objects in two groups: maximal score ties."""
    objects = []
    for i in range(num_objects):
        level = 2.0 if i % 2 else 5.0
        objects.append(
            TemporalObject(
                i, PiecewiseLinearFunction([0.0, 50.0, 100.0], [level] * 3)
            )
        )
    return TemporalDatabase(objects, span=(0.0, 100.0), pad=True)


def node_io_snapshots(cluster):
    return [node.method.io_stats.snapshot() for node in cluster.nodes]


def assert_cluster_batch_equals_scalar(make_cluster, scalar_name, batch):
    """Answers, per-node IO, and comm of query_many == the scalar loop.

    Two independently built clusters (identical by construction) run
    the two paths, so buffer-free IO counters and comm stats are
    directly comparable from zero.
    """
    scalar_cluster = make_cluster()
    batched_cluster = make_cluster()
    rows = list(zip(batch.t1s, batch.t2s, batch.ks))

    scalar_io = node_io_snapshots(scalar_cluster)
    scalar_query = getattr(scalar_cluster, scalar_name)
    expected = [
        scalar_query(float(t1), float(t2), int(k)) for t1, t2, k in rows
    ]
    scalar_io = [
        after - before
        for after, before in zip(node_io_snapshots(scalar_cluster), scalar_io)
    ]

    batched_io = node_io_snapshots(batched_cluster)
    got = batched_cluster.query_many(batch)
    batched_io = [
        after - before
        for after, before in zip(
            node_io_snapshots(batched_cluster), batched_io
        )
    ]

    assert len(got) == len(expected)
    for row, (want, have) in enumerate(zip(expected, got)):
        assert want == have, f"answer diverged at row {row}"
    assert scalar_cluster.comm == batched_cluster.comm
    for node_idx, (want, have) in enumerate(zip(scalar_io, batched_io)):
        assert want == have, f"node {node_idx} IO diverged"
    return expected


# ----------------------------------------------------------------------
# object-partitioned serving
# ----------------------------------------------------------------------
class TestObjectPartitionedBatch:
    def test_query_many_matches_scalar(self, db, batch):
        assert_cluster_batch_equals_scalar(
            lambda: ObjectPartitionedCluster(db, num_nodes=4), "query", batch
        )

    def test_query_many_matches_brute_force(self, db, batch):
        # EXACT3's stab arithmetic agrees with the kernel brute force
        # to float tolerance (the bitwise contract is scalar-protocol
        # vs batched, asserted elsewhere).
        cluster = ObjectPartitionedCluster(db, num_nodes=4)
        got = cluster.query_many(batch)
        for j, result in enumerate(got):
            ref = db.brute_force_top_k(
                float(batch.t1s[j]), float(batch.t2s[j]), int(batch.ks[j])
            )
            assert result.object_ids == ref.object_ids
            assert np.allclose(result.scores, ref.scores, atol=1e-6)

    def test_single_node_cluster(self, db, batch):
        assert_cluster_batch_equals_scalar(
            lambda: ObjectPartitionedCluster(db, num_nodes=1), "query", batch
        )

    def test_appx2plus_nodes(self, db, batch):
        factory = partial(Appx2Plus, epsilon=1e-3, kmax=20)
        assert_cluster_batch_equals_scalar(
            lambda: ObjectPartitionedCluster(
                db, num_nodes=3, method_factory=factory
            ),
            "query",
            batch,
        )

    def test_tie_heavy_answers(self):
        tie_db = tie_heavy_database()
        tie_batch = sample_workload(tie_db, count=24, kmax=10, seed=5)
        assert_cluster_batch_equals_scalar(
            lambda: ObjectPartitionedCluster(tie_db, num_nodes=3),
            "query",
            tie_batch,
        )

    @pytest.mark.parametrize("backend,workers", EXECUTOR_MATRIX)
    def test_build_fanout_backends_identical(self, db, batch, backend, workers):
        executor = get_executor(backend, workers)
        reference = ObjectPartitionedCluster(db, num_nodes=4)
        fanned = ObjectPartitionedCluster(db, num_nodes=4, executor=executor)
        for ref_node, fan_node in zip(reference.nodes, fanned.nodes):
            assert (
                ref_node.method.device.num_blocks
                == fan_node.method.device.num_blocks
            )
            assert (
                ref_node.method.io_stats.writes
                == fan_node.method.io_stats.writes
            )
            # Methods answer from the coordinator's shard databases.
            assert fan_node.method.database is fan_node.database
        assert reference.query_many(batch) == fanned.query_many(batch)

    @pytest.mark.parametrize("backend,workers", EXECUTOR_MATRIX)
    def test_query_fanout_backends_identical(self, db, batch, backend, workers):
        executor = get_executor(backend, workers)
        cluster = ObjectPartitionedCluster(db, num_nodes=3)
        reference = cluster.query_many(batch)
        assert cluster.query_many(batch, executor=executor) == reference

    def test_empty_workload(self, db):
        cluster = ObjectPartitionedCluster(db, num_nodes=3)
        assert cluster.query_many(np.empty((0, 3))) == []


# ----------------------------------------------------------------------
# time-partitioned serving
# ----------------------------------------------------------------------
class TestTimePartitionedBatch:
    def test_scatter_gather_matches_scalar(self, db, batch):
        assert_cluster_batch_equals_scalar(
            lambda: TimePartitionedCluster(db, num_nodes=5),
            "query_scatter_gather",
            batch,
        )

    def test_scatter_gather_matches_brute_force(self, db, batch):
        cluster = TimePartitionedCluster(db, num_nodes=5)
        got = cluster.query_many(batch)
        for j, result in enumerate(got):
            ref = db.brute_force_top_k(
                float(batch.t1s[j]), float(batch.t2s[j]), int(batch.ks[j])
            )
            assert result.object_ids == ref.object_ids
            assert np.allclose(result.scores, ref.scores, atol=1e-6)

    def test_out_of_domain_and_degenerate_queries(self, db):
        t_min, t_max = db.span
        t1s = np.asarray([t_max + 1.0, t_min - 3.0, 40.0])
        t2s = np.asarray([t_max + 2.0, t_min - 1.0, 40.0])
        ks = np.asarray([4, 4, 4])
        cluster = TimePartitionedCluster(db, num_nodes=4)
        expected = [
            cluster.query_scatter_gather(float(a), float(b), int(k))
            for a, b, k in zip(t1s, t2s, ks)
        ]
        got = cluster.query_many(np.stack([t1s, t2s, ks], axis=1))
        assert expected == got
        # Fully out-of-domain queries have no touched nodes: empty.
        assert len(got[0]) == 0 and len(got[1]) == 0

    def test_threshold_protocol_replay(self, db, batch):
        cluster = TimePartitionedCluster(db, num_nodes=4)
        small = sample_workload(db, count=8, kmax=6, seed=9)
        expected = [
            cluster.query_threshold(float(a), float(b), int(k))
            for a, b, k in zip(small.t1s, small.t2s, small.ks)
        ]
        got = cluster.query_many(small, protocol="threshold")
        assert expected == got

    def test_unknown_protocol_rejected(self, db, batch):
        from repro.core.errors import ReproError

        cluster = TimePartitionedCluster(db, num_nodes=2)
        with pytest.raises(ReproError):
            cluster.query_many(batch, protocol="gossip")

    def test_tie_heavy_answers(self):
        tie_db = tie_heavy_database()
        tie_batch = sample_workload(tie_db, count=24, kmax=10, seed=6)
        assert_cluster_batch_equals_scalar(
            lambda: TimePartitionedCluster(tie_db, num_nodes=3),
            "query_scatter_gather",
            tie_batch,
        )

    def test_query_blocking_is_invariant(self, db, batch, monkeypatch):
        """Tiny coordinator blocks produce the same answers and comm."""
        import repro.core.plfstore as plfstore

        cluster = TimePartitionedCluster(db, num_nodes=5)
        cluster.comm.reset()
        reference = cluster.query_many(batch)
        reference_comm = cluster.comm.snapshot()
        monkeypatch.setattr(plfstore, "_CHUNK_ELEMENTS", db.num_objects * 3)
        cluster.comm.reset()
        blocked = cluster.query_many(batch)
        assert blocked == reference
        assert cluster.comm.snapshot() == reference_comm

    @pytest.mark.parametrize("backend,workers", EXECUTOR_MATRIX)
    def test_build_fanout_backends_identical(self, db, batch, backend, workers):
        executor = get_executor(backend, workers)
        reference = TimePartitionedCluster(db, num_nodes=4)
        fanned = TimePartitionedCluster(db, num_nodes=4, executor=executor)
        for ref_node, fan_node in zip(reference.nodes, fanned.nodes):
            assert (
                ref_node.method.device.num_blocks
                == fan_node.method.device.num_blocks
            )
        assert reference.query_many(batch) == fanned.query_many(batch)


# ----------------------------------------------------------------------
# threshold rounds (satellite: per-round comm records)
# ----------------------------------------------------------------------
class TestThresholdRounds:
    def test_rounds_partition_the_totals(self, db):
        cluster = TimePartitionedCluster(db, num_nodes=4)
        cluster.comm.reset()
        cluster.query_threshold(10.0, 80.0, 5, batch_size=4)
        assert cluster.comm.rounds, "TA recorded no rounds"
        assert (
            sum(record.pairs for record in cluster.comm.rounds)
            == cluster.comm.pairs
        )
        assert (
            sum(record.messages for record in cluster.comm.rounds)
            == cluster.comm.messages
        )

    def test_tie_heavy_kth_best_threshold(self):
        """Maximal ties at the k-th score: TA still exact, rounds sane."""
        tie_db = tie_heavy_database(num_objects=40)
        cluster = TimePartitionedCluster(tie_db, num_nodes=4)
        for k in (1, 2, 19, 20, 21, 40):
            cluster.comm.reset()
            got = cluster.query_threshold(5.0, 95.0, k, batch_size=4)
            ref = tie_db.brute_force_top_k(5.0, 95.0, k)
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-9)
            assert sum(r.pairs for r in cluster.comm.rounds) == (
                cluster.comm.pairs
            )

    def test_reset_clears_rounds(self, db):
        cluster = TimePartitionedCluster(db, num_nodes=3)
        cluster.query_threshold(10.0, 60.0, 3)
        cluster.comm.reset()
        assert cluster.comm.rounds == []
        assert cluster.comm.pairs == 0

    def test_round_records_split_by_access_kind(self, db):
        """Each round's sorted/random split partitions its totals."""
        cluster = TimePartitionedCluster(db, num_nodes=4)
        cluster.comm.reset()
        cluster.query_threshold(10.0, 80.0, 5, batch_size=4)
        assert cluster.comm.rounds
        for record in cluster.comm.rounds:
            assert record.messages == (
                record.sorted_messages + record.random_messages
            )
            assert record.pairs == record.sorted_pairs + record.random_pairs
        # Sorted access happens every round; random access at least in
        # the first (everything streamed there is newly seen).
        assert all(r.sorted_messages > 0 for r in cluster.comm.rounds)
        assert cluster.comm.rounds[0].random_messages > 0


# ----------------------------------------------------------------------
# lock-step batched TA (tentpole: one kernel pass per node per round)
# ----------------------------------------------------------------------
def assert_lockstep_equals_scalar(db, num_nodes, batch, batch_size=8):
    """query_many(protocol="threshold") == the scalar TA loop, exactly.

    Two independently built clusters run the two paths from zero, so
    answers, comm totals, *and the per-round records* (with their
    sorted/random splits) are directly comparable.
    """
    from repro.core.queries import workload_arrays

    scalar_cluster = TimePartitionedCluster(db, num_nodes=num_nodes)
    batched_cluster = TimePartitionedCluster(db, num_nodes=num_nodes)
    rows = list(zip(*workload_arrays(batch)))
    expected = [
        scalar_cluster.query_threshold(
            float(t1), float(t2), int(k), batch_size=batch_size
        )
        for t1, t2, k in rows
    ]
    got = batched_cluster.query_many(
        batch, protocol="threshold", batch_size=batch_size
    )
    assert len(got) == len(expected)
    for row, (want, have) in enumerate(zip(expected, got)):
        assert want == have, f"answer diverged at row {row}"
    # CommStats equality covers totals and the full rounds list.
    assert scalar_cluster.comm == batched_cluster.comm
    return expected


class TestThresholdLockStep:
    @pytest.mark.parametrize("num_nodes", [1, 2, 4, 8])
    def test_matches_scalar_across_node_counts(self, db, batch, num_nodes):
        assert_lockstep_equals_scalar(db, num_nodes, batch)

    @pytest.mark.parametrize("batch_size", [1, 3, 16])
    def test_matches_scalar_across_batch_sizes(self, db, batch, batch_size):
        assert_lockstep_equals_scalar(db, 4, batch, batch_size=batch_size)

    def test_matches_brute_force(self, db, batch):
        cluster = TimePartitionedCluster(db, num_nodes=4)
        got = cluster.query_many(batch, protocol="threshold")
        for j, result in enumerate(got):
            ref = db.brute_force_top_k(
                float(batch.t1s[j]), float(batch.t2s[j]), int(batch.ks[j])
            )
            assert result.object_ids == ref.object_ids
            assert np.allclose(result.scores, ref.scores, atol=1e-6)

    def test_tie_heavy_totals(self):
        """Maximal score ties: tie-break order still scalar-identical."""
        tie_db = tie_heavy_database(num_objects=40)
        tie_batch = sample_workload(tie_db, count=24, kmax=20, seed=5)
        assert_lockstep_equals_scalar(tie_db, 4, tie_batch, batch_size=4)

    def test_k_exceeds_num_objects(self, db):
        t1s = np.asarray([10.0, 20.0])
        t2s = np.asarray([80.0, 90.0])
        ks = np.asarray([db.num_objects + 5, db.num_objects * 3])
        batch = np.stack([t1s, t2s, ks], axis=1)
        expected = assert_lockstep_equals_scalar(db, 4, batch)
        for j, result in enumerate(expected):
            ref = db.brute_force_top_k(
                float(t1s[j]), float(t2s[j]), int(ks[j])
            )
            assert result.object_ids == ref.object_ids

    def test_empty_touched_sets_in_batch(self, db):
        """Out-of-domain intervals answer empty and never join the
        lock-step rounds of live queries."""
        t_min, t_max = db.span
        t1s = np.asarray([10.0, t_max + 1.0, t_min - 5.0])
        t2s = np.asarray([70.0, t_max + 2.0, t_min - 1.0])
        ks = np.asarray([5, 4, 3])
        batch = np.stack([t1s, t2s, ks], axis=1)
        results = assert_lockstep_equals_scalar(db, 4, batch)
        assert len(results[1]) == 0  # past the span: no touched nodes
        assert len(results[2]) == 0  # before the span
        assert len(results[0]) == 5

    def test_nonpositive_k_scalar_guard(self, db):
        """k <= 0 is answered empty before any stream is opened (the
        batched entry point rejects k < 1 at workload validation)."""
        cluster = TimePartitionedCluster(db, num_nodes=3)
        cluster.comm.reset()
        assert cluster.query_threshold(10.0, 70.0, 0) == TopKResult()
        assert cluster.query_threshold(10.0, 70.0, -2) == TopKResult()
        assert cluster.comm.pairs == 0 and cluster.comm.rounds == []

    def test_one_node_cluster(self, db, batch):
        assert_lockstep_equals_scalar(db, 1, batch)

    def test_batch_size_larger_than_any_stream(self, db, batch):
        """One sorted-access round drains every stream completely."""
        expected = assert_lockstep_equals_scalar(
            db, 3, batch, batch_size=10 * db.num_objects
        )
        cluster = TimePartitionedCluster(db, num_nodes=3)
        got = cluster.query_many(
            batch, protocol="threshold", batch_size=10 * db.num_objects
        )
        assert got == expected

    def test_all_streams_exhausted_terminates_exactly(self):
        """Regression: k = m forces the TA to drain every stream; the
        exhausted-stream frontier (0.0, not the last served score)
        lets the threshold drop so the run terminates with the full
        exact answer."""
        tiny = make_random_database(num_objects=8, avg_segments=10, seed=21)
        t1, t2 = tiny.span
        batch = np.asarray([[t1, t2, tiny.num_objects]], dtype=np.float64)
        results = assert_lockstep_equals_scalar(tiny, 4, batch, batch_size=3)
        ref = tiny.brute_force_top_k(t1, t2, tiny.num_objects)
        assert results[0].object_ids == ref.object_ids
        assert np.allclose(results[0].scores, ref.scores, atol=1e-9)

    def test_negative_partials_frontier_clamp(self):
        """Negative score functions: the nonnegative frontier guard
        keeps the TA exact (an object absent from a shard contributes
        0, which exceeds any negative frontier)."""
        objects = []
        for i in range(12):
            level = float(i - 8)  # levels -8 .. 3: mostly negative
            objects.append(
                TemporalObject(
                    i,
                    PiecewiseLinearFunction([0.0, 50.0, 100.0], [level] * 3),
                )
            )
        negative_db = TemporalDatabase(objects, span=(0.0, 100.0), pad=True)
        cluster = TimePartitionedCluster(negative_db, num_nodes=3)
        for k in (1, 3, 12):
            got = cluster.query_threshold(5.0, 95.0, k, batch_size=4)
            ref = negative_db.brute_force_top_k(5.0, 95.0, k)
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-9)
        batch = np.asarray(
            [[5.0, 95.0, 1], [5.0, 95.0, 3], [5.0, 95.0, 12]],
            dtype=np.float64,
        )
        assert_lockstep_equals_scalar(negative_db, 3, batch, batch_size=4)

    @pytest.mark.parametrize("backend,workers", EXECUTOR_MATRIX)
    def test_build_fanout_backends_identical(self, db, batch, backend, workers):
        """Lock-step answers are backend-invariant for the node-build
        fan-out (the TA index derives from the shard stores, which are
        byte-identical across executors)."""
        executor = get_executor(backend, workers)
        reference = TimePartitionedCluster(db, num_nodes=4)
        fanned = TimePartitionedCluster(db, num_nodes=4, executor=executor)
        expected = reference.query_many(batch, protocol="threshold")
        got = fanned.query_many(batch, protocol="threshold")
        assert expected == got
        assert reference.comm == fanned.comm

    def test_serving_backend_threshold_protocol(self, db, batch):
        """ClusterBackend forwards protocol="threshold" to query_many."""
        from repro.serving import ClusterBackend

        cluster = TimePartitionedCluster(db, num_nodes=3)
        backend = ClusterBackend(cluster, protocol="threshold")
        reference = TimePartitionedCluster(db, num_nodes=3)
        expected = reference.query_many(batch, protocol="threshold")
        got = backend.serve_many(batch.t1s, batch.t2s, batch.ks)
        assert got == expected


# ----------------------------------------------------------------------
# partitioners (satellite: disjoint cover, determinism, edge cases)
# ----------------------------------------------------------------------
class TestPartitioners:
    @pytest.mark.parametrize("num_nodes", [1, 3, 7])
    def test_hash_partition_disjoint_cover(self, db, num_nodes):
        partitions = hash_partition(db, num_nodes)
        seen = []
        for partition in partitions:
            ids = partition.database.object_ids().tolist()
            assert all(
                int(i) % num_nodes == partition.node_id for i in ids
            )
            seen.extend(ids)
        assert sorted(seen) == sorted(db.object_ids().tolist())
        assert len(seen) == len(set(seen))

    def test_hash_partition_deterministic_under_seed(self):
        a = make_random_database(num_objects=30, avg_segments=10, seed=11)
        b = make_random_database(num_objects=30, avg_segments=10, seed=11)
        parts_a = hash_partition(a, 4)
        parts_b = hash_partition(b, 4)
        assert [p.node_id for p in parts_a] == [p.node_id for p in parts_b]
        for pa, pb in zip(parts_a, parts_b):
            assert np.array_equal(
                pa.database.object_ids(), pb.database.object_ids()
            )
            assert np.array_equal(
                pa.database.store().knot_times,
                pb.database.store().knot_times,
            )

    def test_hash_partition_edge_cases(self, db):
        from repro.core.errors import ReproError

        single = hash_partition(db, 1)
        assert len(single) == 1
        assert single[0].database.num_objects == db.num_objects
        with pytest.raises(ReproError):
            hash_partition(db, 0)
        with pytest.raises(ReproError):
            hash_partition(db, db.num_objects + 1)

    @pytest.mark.parametrize("num_nodes", [1, 4, 6])
    def test_time_partition_conserves_mass(self, db, num_nodes):
        partitions = time_range_partition(db, num_nodes)
        # Slices form a disjoint cover of the span.
        assert partitions[0].time_range[0] == db.t_min
        assert partitions[-1].time_range[1] == db.t_max
        for prev, cur in zip(partitions, partitions[1:]):
            assert prev.time_range[1] == cur.time_range[0]
        # Every object's mass is conserved across its slices.
        rng = np.random.default_rng(3)
        for _ in range(6):
            t1, t2 = np.sort(rng.uniform(*db.span, 2))
            whole = db.scores(float(t1), float(t2))
            sliced = np.zeros_like(whole)
            id_to_row = {
                int(object_id): row
                for row, object_id in enumerate(db.object_ids())
            }
            for partition in partitions:
                for obj in partition.database:
                    sliced[id_to_row[obj.object_id]] += obj.score(
                        float(t1), float(t2)
                    )
            assert np.allclose(sliced, whole, atol=1e-6)

    def test_time_partition_more_nodes_than_objects(self):
        tiny = make_random_database(num_objects=3, avg_segments=8, seed=2)
        partitions = time_range_partition(tiny, 10)
        cluster = TimePartitionedCluster(tiny, num_nodes=10)
        assert cluster.num_nodes == len(partitions)
        ref = tiny.brute_force_top_k(*tiny.span, 3)
        got = cluster.query_scatter_gather(*tiny.span, 3)
        assert got.object_ids == ref.object_ids

    def test_time_partition_deterministic_under_seed(self):
        a = make_random_database(num_objects=20, avg_segments=12, seed=8)
        b = make_random_database(num_objects=20, avg_segments=12, seed=8)
        for pa, pb in zip(time_range_partition(a, 5), time_range_partition(b, 5)):
            assert pa.node_id == pb.node_id
            assert pa.time_range == pb.time_range
            assert np.array_equal(
                pa.database.store().knot_times,
                pb.database.store().knot_times,
            )


# ----------------------------------------------------------------------
# columnar merge + engine facade
# ----------------------------------------------------------------------
class TestMergeAndFacade:
    def test_merge_top_k_matches_select_top_k(self):
        rng = np.random.default_rng(12)
        for _ in range(20):
            shards = []
            pairs = []
            next_id = 0
            for _ in range(int(rng.integers(1, 5))):
                size = int(rng.integers(0, 8))
                ids = list(range(next_id, next_id + size))
                next_id += size
                scores = rng.integers(0, 5, size).astype(float).tolist()
                shards.append(
                    TopKResult.from_pairs(list(zip(ids, scores)))
                )
                pairs.extend(zip(ids, scores))
            k = int(rng.integers(1, 8))
            assert merge_top_k(shards, k) == select_top_k(pairs, k)

    def test_engine_cluster_entry_point(self, db, batch):
        engine = TemporalRankingEngine(db)
        obj_cluster = engine.cluster(3)
        ref = [
            engine.top_k(float(a), float(b), int(k))
            for a, b, k in zip(batch.t1s, batch.t2s, batch.ks)
        ]
        assert obj_cluster.query_many(batch) == ref
        time_cluster = engine.cluster(3, partition="time")
        got = time_cluster.query_many(batch)
        for want, have in zip(ref, got):
            assert want.object_ids == have.object_ids
            assert np.allclose(want.scores, have.scores, atol=1e-6)

    def test_engine_cluster_rejects_unknown_partition(self, db):
        from repro.core.errors import InvalidQueryError

        engine = TemporalRankingEngine(db)
        with pytest.raises(InvalidQueryError):
            engine.cluster(2, partition="rack")
