"""Unit tests for TemporalDatabase (padding, views, updates, sampling)."""

import numpy as np
import pytest

from repro.core import (
    PiecewiseLinearFunction,
    TemporalDatabase,
    TemporalObject,
)
from repro.core.errors import InvalidQueryError, ReproError


def _obj(object_id, times, values):
    return TemporalObject(object_id, PiecewiseLinearFunction(times, values))


class TestConstruction:
    def test_requires_objects(self):
        with pytest.raises(ReproError):
            TemporalDatabase([])

    def test_requires_unique_ids(self):
        with pytest.raises(ReproError):
            TemporalDatabase([_obj(1, [0, 1], [1, 1]), _obj(1, [0, 1], [2, 2])])

    def test_default_span_is_tightest(self):
        db = TemporalDatabase(
            [_obj(0, [2, 5], [1, 1]), _obj(1, [0, 9], [1, 1])], pad=False
        )
        assert db.span == (0, 9)

    def test_padding_covers_span(self):
        db = TemporalDatabase(
            [_obj(0, [2, 5], [1, 1]), _obj(1, [0, 9], [1, 1])], span=(0, 10)
        )
        for obj in db:
            assert obj.function.start == 0
            assert obj.function.end == 10

    def test_padding_preserves_mass(self):
        db_padded = TemporalDatabase([_obj(0, [2, 5], [4, 4])], span=(0, 10), pad=True)
        assert db_padded.total_mass == pytest.approx(12, abs=1e-4)


class TestPaperNotation:
    def test_counts(self, small_db):
        assert small_db.num_objects == len(small_db.objects) == 30
        assert small_db.total_segments == sum(o.num_segments for o in small_db)
        assert small_db.avg_segments == pytest.approx(
            small_db.total_segments / 30
        )
        assert small_db.max_segments == max(o.num_segments for o in small_db)

    def test_total_mass_is_sum_of_objects(self, small_db):
        assert small_db.total_mass == pytest.approx(
            sum(o.total_mass for o in small_db)
        )

    def test_absolute_total_mass_at_least_signed(self, negative_db):
        assert negative_db.absolute_total_mass >= negative_db.total_mass - 1e-9


class TestScoring:
    def test_scores_match_objects(self, small_db):
        scores = small_db.scores(10, 40)
        for idx, obj in enumerate(small_db):
            assert scores[idx] == pytest.approx(obj.score(10, 40))

    def test_scores_reject_reversed(self, small_db):
        with pytest.raises(InvalidQueryError):
            small_db.scores(5, 1)

    def test_brute_force_topk_is_sorted(self, small_db):
        res = small_db.brute_force_top_k(0, 100, 10)
        assert res.scores == sorted(res.scores, reverse=True)
        assert len(res) == 10

    def test_get_and_exact_score(self, small_db):
        obj = small_db.get(3)
        assert obj.object_id == 3
        assert small_db.exact_score(3, 0, 50) == pytest.approx(obj.score(0, 50))

    def test_get_missing_raises(self, small_db):
        with pytest.raises(ReproError):
            small_db.get(10_000)


class TestBulkViews:
    def test_all_segments_sorted_and_complete(self, small_db):
        segments = small_db.all_segments()
        assert segments.shape[0] == small_db.total_segments
        assert np.all(np.diff(segments[:, 1]) >= 0)
        # Every row is a valid segment.
        assert np.all(segments[:, 3] > segments[:, 1])

    def test_sweep_events_reconstruct_total_function(self, small_db):
        events = small_db.sweep_events()
        # Summing all dV jumps and slope changes returns to zero at the end
        # (every object enters and leaves).
        assert np.sum(events[:, 1]) == pytest.approx(0, abs=1e-6)
        # Padding ramps create very steep slopes, so the slope-change sum
        # cancels only to within roundoff relative to the largest slope.
        slope_scale = float(np.abs(events[:, 2]).max())
        assert np.sum(events[:, 2]) == pytest.approx(0, abs=1e-12 * slope_scale)

    def test_sweep_events_integral_matches_mass(self, small_db):
        events = small_db.sweep_events()
        times = events[:, 0]
        w_after = np.cumsum(events[:, 2])
        dt = np.diff(times)
        drift = np.concatenate([[0.0], np.cumsum(w_after[:-1] * dt)])
        v_after = np.cumsum(events[:, 1]) + drift
        mass = np.sum(v_after[:-1] * dt + 0.5 * w_after[:-1] * dt * dt)
        # Steep padding ramps cost ~1e-7 relative accuracy in the sweep;
        # far below any breakpoint threshold (eps*M).
        assert mass == pytest.approx(small_db.total_mass, rel=1e-5)


class TestUpdates:
    def test_append_segment(self):
        db = TemporalDatabase([_obj(0, [0, 5], [2, 2])], pad=False)
        updated = db.append_segment(0, 7.0, 4.0)
        assert updated.num_segments == 2
        assert db.get(0).function.end == 7.0
        assert db.t_max == 7.0
        assert db.total_mass == pytest.approx(10 + 0.5 * 2 * 6)

    def test_append_missing_object(self, small_db):
        with pytest.raises(ReproError):
            small_db.append_segment(999, 200.0, 1.0)


class TestSampling:
    def test_sample_objects(self, medium_db):
        sub = medium_db.sample_objects(25, seed=1)
        assert sub.num_objects == 25
        assert sub.span == medium_db.span
        # Sampled objects keep their original functions and ids.
        for obj in sub:
            assert obj.function == medium_db.get(obj.object_id).function

    def test_sample_too_many(self, small_db):
        with pytest.raises(ReproError):
            small_db.sample_objects(10_000)

    def test_sample_deterministic(self, medium_db):
        a = medium_db.sample_objects(10, seed=5).object_ids()
        b = medium_db.sample_objects(10, seed=5).object_ids()
        assert np.array_equal(a, b)
