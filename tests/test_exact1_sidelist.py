"""Tests for EXACT1's long-segment side list and scan-back window."""

import numpy as np

from repro.core import (
    PiecewiseLinearFunction,
    TemporalDatabase,
    TemporalObject,
    TopKQuery,
)
from repro.exact import Exact1

from _support import make_random_database, random_intervals


def database_with_long_padders():
    """Objects active in a narrow window, padded across [0, 1000]."""
    rng = np.random.default_rng(5)
    objects = []
    for i in range(30):
        start = rng.uniform(400, 500)
        times = np.unique(start + np.sort(rng.uniform(0, 50, 20)))
        values = rng.uniform(1, 5, times.size)
        objects.append(TemporalObject(i, PiecewiseLinearFunction(times, values)))
    return TemporalDatabase(objects, span=(0.0, 1000.0), pad=True)


class TestSideList:
    def test_padding_goes_to_side_list(self):
        db = database_with_long_padders()
        method = Exact1().build(db)
        # The huge zero pads must not define the scan-back window.
        assert method.max_segment_duration < 100.0
        assert len(method._long_blocks) > 0

    def test_correct_with_side_list(self):
        db = database_with_long_padders()
        method = Exact1().build(db)
        for t1, t2 in random_intervals(db, 20, seed=2):
            ref = db.brute_force_top_k(t1, t2, 5)
            got = method.query(TopKQuery(t1, t2, 5))
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-6)

    def test_narrow_query_ios_stay_small(self):
        db = database_with_long_padders()
        method = Exact1().build(db)
        # A tiny query far from the active window: near-minimal IOs.
        cost = method.measured_query(TopKQuery(900.0, 905.0, 3))
        assert cost.ios <= 10 + len(method._long_blocks)

    def test_uniform_durations_no_side_list_regression(self):
        db = make_random_database(num_objects=20, avg_segments=30, seed=9)
        method = Exact1().build(db)
        for t1, t2 in random_intervals(db, 10, seed=3):
            ref = db.brute_force_top_k(t1, t2, 4)
            assert method.query(TopKQuery(t1, t2, 4)).object_ids == ref.object_ids


class TestBreakpointCap:
    def test_max_r_truncates(self):
        from repro.approximate import build_breakpoints2

        db = make_random_database(num_objects=30, avg_segments=20, seed=10)
        capped = build_breakpoints2(db, 1e-5, max_r=16)
        assert capped.truncated
        assert capped.r <= 18  # cap + endpoints after dedup

    def test_uncapped_not_truncated(self):
        from repro.approximate import build_breakpoints2

        db = make_random_database(num_objects=30, avg_segments=20, seed=10)
        assert not build_breakpoints2(db, 0.01).truncated
