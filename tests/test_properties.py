"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import PiecewiseLinearFunction, TemporalDatabase, TemporalObject, TopKQuery
from repro.core.results import select_top_k
from repro.exact import Exact1, Exact2, Exact3
from repro.storage import BlockDevice
from repro.btree import BPlusTree
from repro.intervaltree import ExternalIntervalTree
from repro.approximate import build_breakpoints1, build_breakpoints2

MAX_EXAMPLES = 25


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def plf_strategy(draw, min_knots=2, max_knots=12, nonnegative=True):
    """Well-conditioned random PLFs: knots built from positive gaps
    (no filtering, no pathological slopes)."""
    n = draw(st.integers(min_knots, max_knots))
    start = draw(st.floats(0, 50, allow_nan=False, allow_infinity=False))
    gaps = draw(
        st.lists(
            st.floats(0.01, 20, allow_nan=False, allow_infinity=False),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    offsets = np.concatenate([[0.0], np.cumsum(gaps)])
    # Keep everything inside the shared [0, 100] domain.
    if start + offsets[-1] > 100.0:
        offsets = offsets * (100.0 - start) / offsets[-1]
    times = start + offsets
    times[-1] = min(float(times[-1]), 100.0)
    low = 0.0 if nonnegative else -10.0
    values = draw(
        st.lists(
            st.floats(low, 10, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return PiecewiseLinearFunction(times, values)


@st.composite
def database_strategy(draw, max_objects=8):
    m = draw(st.integers(2, max_objects))
    objects = []
    for i in range(m):
        objects.append(TemporalObject(i, draw(plf_strategy())))
    return TemporalDatabase(objects, span=(0.0, 100.0), pad=True)


# ----------------------------------------------------------------------
# PLF invariants
# ----------------------------------------------------------------------
class TestPlfProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(plf_strategy(), st.floats(0, 100), st.floats(0, 100), st.floats(0, 100))
    def test_integral_additive(self, plf, a, b, c):
        a, b, c = sorted([a, b, c])
        whole = plf.integral(a, c)
        parts = plf.integral(a, b) + plf.integral(b, c)
        assert abs(whole - parts) <= 1e-6 * max(1.0, abs(whole))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(plf_strategy())
    def test_cumulative_monotone_for_nonnegative(self, plf):
        ts = np.linspace(plf.start, plf.end, 50)
        cums = plf.cumulative_many(ts)
        assert np.all(np.diff(cums) >= -1e-9)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(plf_strategy(), st.floats(0, 1))
    def test_inverse_cumulative_round_trip(self, plf, fraction):
        total = plf.total_mass
        assume(total > 1e-6)
        target = fraction * total
        t = plf.inverse_cumulative(target)
        assert abs(plf.cumulative(t) - target) <= 1e-6 * max(1.0, total)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(plf_strategy(nonnegative=False))
    def test_absolute_dominates_signed(self, plf):
        ab = plf.absolute()
        for t in np.linspace(plf.start, plf.end, 20):
            assert ab.value(float(t)) >= abs(plf.value(float(t))) - 1e-9

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(plf_strategy(), st.floats(0.1, 50))
    def test_padding_preserves_integrals(self, plf, margin):
        padded = plf.padded(plf.start - margin, plf.end + margin)
        for a, b in [(plf.start, plf.end), (plf.start - margin, plf.end)]:
            assert abs(padded.integral(a, b) - plf.integral(a, b)) <= 1e-5 * max(
                1.0, abs(plf.integral(a, b))
            ) + 1e-3


# ----------------------------------------------------------------------
# selection invariants
# ----------------------------------------------------------------------
class TestSelectionProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 50), st.floats(0, 100)), max_size=60),
        st.integers(1, 20),
    )
    def test_select_top_k_matches_sort(self, pairs, k):
        # Dedup ids: answers are sets of objects.
        seen = {}
        for obj, score in pairs:
            seen[obj] = score
        pairs = list(seen.items())
        expected = sorted(pairs, key=lambda p: (-p[1], p[0]))[:k]
        got = select_top_k(pairs, k)
        assert [(it.object_id, it.score) for it in got] == expected


# ----------------------------------------------------------------------
# index structure invariants
# ----------------------------------------------------------------------
class TestBTreeProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=200),
        st.lists(st.floats(0, 1000, allow_nan=False), max_size=30),
    )
    def test_bulk_load_plus_inserts_sorted(self, initial, inserts):
        initial = sorted(initial)
        tree = BPlusTree(BlockDevice(block_bytes=256), value_columns=1)
        tree.bulk_load(
            np.asarray(initial), np.asarray(initial, dtype=float).reshape(-1, 1)
        )
        for key in inserts:
            tree.insert(key, np.asarray([key]))
        got = [k for k, _ in tree.items()]
        assert np.allclose(got, sorted(initial + inserts))
        tree.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.floats(0, 1000, allow_nan=False), min_size=5, max_size=200
        ),
        st.floats(-10, 1010),
    )
    def test_successor_agrees_with_searchsorted(self, keys, probe):
        keys = sorted(keys)
        tree = BPlusTree(BlockDevice(block_bytes=256), value_columns=1)
        tree.bulk_load(
            np.asarray(keys), np.zeros((len(keys), 1))
        )
        idx = np.searchsorted(keys, probe, side="left")
        got = tree.successor(probe)
        if idx == len(keys):
            assert got is None
        else:
            assert got[0] == keys[idx]


class TestIntervalTreeProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=150,
        ),
        st.floats(-5, 105),
    )
    def test_stab_matches_bruteforce(self, raw, probe):
        lows = np.asarray([min(a, b) for a, b in raw])
        highs = np.asarray([max(a, b) for a, b in raw])
        values = np.arange(len(raw), dtype=np.float64).reshape(-1, 1)
        tree = ExternalIntervalTree(BlockDevice(block_bytes=512), value_columns=1)
        tree.build(lows, highs, values)
        got = set(tree.stab(probe)[:, 2].astype(int).tolist())
        expected = set(
            np.flatnonzero((lows <= probe) & (probe <= highs)).tolist()
        )
        assert got == expected


# ----------------------------------------------------------------------
# method-level invariants
# ----------------------------------------------------------------------
class TestMethodProperties:
    @settings(max_examples=10, deadline=None)
    @given(database_strategy(), st.floats(0, 100), st.floats(0, 100), st.integers(1, 5))
    def test_exact_methods_equal_bruteforce(self, db, a, b, k):
        t1, t2 = min(a, b), max(a, b)
        ref = db.brute_force_top_k(t1, t2, k)
        for cls in (Exact1, Exact2, Exact3):
            got = cls().build(db).query(TopKQuery(t1, t2, k))
            assert np.allclose(got.scores, ref.scores, atol=1e-6)
            for j in range(len(ref)):
                if got.object_ids[j] != ref.object_ids[j]:
                    # Rank swaps are only tolerable at numerically
                    # indistinguishable scores (denormal-scale queries).
                    assert got.scores[j] == pytest.approx(
                        ref.scores[j], rel=1e-9, abs=1e-12
                    )

    @settings(max_examples=10, deadline=None)
    @given(database_strategy(), st.floats(0.02, 0.3))
    def test_breakpoints1_lemma2(self, db, epsilon):
        assume(db.total_mass > 1e-6)
        bp = build_breakpoints1(db, epsilon=epsilon)
        assert bp.verify(db) <= bp.threshold * (1 + 1e-6) + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(database_strategy(), st.floats(0.02, 0.3))
    def test_breakpoints2_lemma2(self, db, epsilon):
        assume(db.total_mass > 1e-6)
        bp = build_breakpoints2(db, epsilon)
        assert bp.verify(db) <= bp.threshold * (1 + 1e-6) + 1e-9
