"""Tests for the time series segmentation algorithms."""

import numpy as np
import pytest

from repro.core.errors import InvalidFunctionError
from repro.segmentation import bottom_up, chord_error, sliding_window, swab

ALGORITHMS = [sliding_window, bottom_up, swab]


def noisy_signal(n=300, seed=0):
    rng = np.random.default_rng(seed)
    t = np.sort(rng.uniform(0, 20, n))
    t = np.unique(t)
    v = np.sin(t) + 2.0 + 0.02 * rng.standard_normal(t.size)
    return t, v


class TestChordError:
    def test_two_points_zero(self):
        assert chord_error(np.asarray([0.0, 1.0]), np.asarray([3.0, 4.0])) == 0.0

    def test_collinear_zero(self):
        t = np.asarray([0.0, 1.0, 2.0])
        v = np.asarray([0.0, 2.0, 4.0])
        assert chord_error(t, v) == pytest.approx(0)

    def test_spike(self):
        t = np.asarray([0.0, 1.0, 2.0])
        v = np.asarray([0.0, 5.0, 0.0])
        assert chord_error(t, v) == pytest.approx(5)


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda f: f.__name__)
class TestCommonBehaviour:
    def test_respects_tolerance(self, algorithm):
        t, v = noisy_signal(seed=1)
        tol = 0.1
        plf = algorithm(t, v, tol)
        # Max deviation at the original samples stays within tolerance
        # (small slack: SWAB re-buffers across emitted boundaries).
        errors = np.abs(plf.value_many(t) - v)
        assert errors.max() <= tol * 1.5

    def test_fewer_knots_than_samples(self, algorithm):
        t, v = noisy_signal(seed=2)
        plf = algorithm(t, v, 0.2)
        assert plf.num_segments < t.size - 1

    def test_preserves_endpoints(self, algorithm):
        t, v = noisy_signal(seed=3)
        plf = algorithm(t, v, 0.1)
        assert plf.start == t[0]
        assert plf.end == t[-1]
        assert plf.value(t[0]) == pytest.approx(v[0])
        assert plf.value(t[-1]) == pytest.approx(v[-1])

    def test_tiny_input_rejected(self, algorithm):
        with pytest.raises(InvalidFunctionError):
            algorithm(np.asarray([0.0]), np.asarray([1.0]), 0.1)

    def test_straight_line_collapses(self, algorithm):
        t = np.linspace(0, 10, 100)
        v = 3.0 * t + 1.0
        plf = algorithm(t, v, 1e-9)
        assert plf.num_segments <= 3

    def test_tighter_tolerance_more_segments(self, algorithm):
        t, v = noisy_signal(seed=4)
        coarse = algorithm(t, v, 0.5)
        fine = algorithm(t, v, 0.05)
        assert fine.num_segments >= coarse.num_segments


class TestAdaptivity:
    def test_bottom_up_allocates_to_volatile_region(self):
        """Paper Section 1 observation (2): adaptive methods put more
        segments where the series is volatile."""
        t = np.linspace(0, 20, 400)
        v = np.where(t < 10, 1.0, np.sin(8 * t))
        plf = bottom_up(t, v, 0.1)
        knots = plf.times
        calm = np.sum(knots < 10)
        volatile = np.sum(knots >= 10)
        assert volatile > calm * 2
