"""Tests for the engine facade, CSV IO, and streaming monitor."""

import numpy as np
import pytest

from repro.core.errors import InvalidQueryError, ReproError
from repro.datasets.io import load_csv, save_csv
from repro.engine import TemporalRankingEngine
from repro.streaming import SlidingWindowMonitor, replay

from _support import make_random_database


class TestCsvIO:
    def test_round_trip(self, tmp_path):
        db = make_random_database(num_objects=10, avg_segments=8, seed=31)
        path = tmp_path / "readings.csv"
        rows = save_csv(db, path)
        assert rows == sum(o.num_segments + 1 for o in db)
        loaded = load_csv(path, span=db.span)
        assert loaded.num_objects == db.num_objects
        assert loaded.total_mass == pytest.approx(db.total_mass, rel=1e-12)
        for obj in db:
            clone = loaded.get(obj.object_id)
            assert np.allclose(clone.function.times, obj.function.times)
            assert np.allclose(clone.function.values, obj.function.values)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ReproError):
            load_csv(path)

    def test_rejects_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("object_id,time,value\n1,notatime,3\n")
        with pytest.raises(ReproError):
            load_csv(path)

    def test_rejects_single_reading_object(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("object_id,time,value\n1,0.0,3.0\n")
        with pytest.raises(ReproError):
            load_csv(path)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("object_id,time,value\n")
        with pytest.raises(ReproError):
            load_csv(path)

    def test_unsorted_readings_ok(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text(
            "object_id,time,value\n"
            "0,5.0,2.0\n0,1.0,1.0\n0,3.0,4.0\n"
            "1,2.0,1.0\n1,0.0,0.0\n"
        )
        db = load_csv(path, pad=False)
        assert db.get(0).function.value(3.0) == pytest.approx(4.0)


class TestEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        db = make_random_database(num_objects=25, avg_segments=15, seed=32)
        return TemporalRankingEngine(db, epsilon=1e-3, kmax=10)

    def test_exact_matches_bruteforce(self, engine):
        db = engine.database
        ref = db.brute_force_top_k(20, 80, 5)
        assert engine.top_k(20, 80, 5).object_ids == ref.object_ids

    def test_approximate_lazy_build(self, engine):
        assert engine._approximate is None
        result = engine.top_k(20, 80, 5, approximate=True)
        assert engine._approximate is not None
        assert len(result) == 5
        # APPX2+ scores are exact for returned objects.
        for item in result:
            assert item.score == pytest.approx(
                engine.database.exact_score(item.object_id, 20, 80), abs=1e-6
            )

    def test_approximate_k_limit(self, engine):
        with pytest.raises(InvalidQueryError):
            engine.top_k(0, 50, 11, approximate=True)

    def test_instant(self, engine):
        res = engine.instant_top_k(42.0, 3)
        values = [
            engine.database.get(i).function.value(42.0)
            for i in res.object_ids
        ]
        assert values == sorted(values, reverse=True)

    def test_quantile(self, engine):
        res = engine.quantile_top_k(20, 80, 3, phi=0.5)
        assert len(res) == 3

    def test_append_maintains_exact(self):
        db = make_random_database(num_objects=10, avg_segments=8, seed=33)
        engine = TemporalRankingEngine(db)
        end = db.t_max
        for i in range(5):
            end += 1.0
            engine.append(0, end, 20.0)
        ref = db.brute_force_top_k(95.0, end, 3)
        assert engine.top_k(95.0, end, 3).object_ids == ref.object_ids

    def test_repr_and_size(self, engine):
        assert "exact3" in repr(engine)
        assert engine.index_size_bytes > 0


class TestStreaming:
    def test_monitor_matches_bruteforce(self):
        db = make_random_database(num_objects=12, avg_segments=8, seed=34)
        monitor = SlidingWindowMonitor(db, window=20.0, k=4)
        rng = np.random.default_rng(1)
        end = db.t_max
        for step in range(25):
            obj = int(step % 12)
            end += 0.5
            value = float(rng.uniform(0, 10))
            change = monitor.tick(obj, end, value)
            ref = db.brute_force_top_k(max(db.t_min, end - 20.0), end, 4)
            assert change.result.object_ids == ref.object_ids

    def test_change_detection(self):
        db = make_random_database(num_objects=6, avg_segments=6, seed=35)
        monitor = SlidingWindowMonitor(db, window=10.0, k=2)
        end = db.t_max
        first = monitor.tick(0, end + 1.0, 0.0)
        assert len(first.entered) == 2  # initial ranking counts as entered
        # Pump object 5 hard: it must enter the top-2 eventually.
        entered_five = False
        for i in range(10):
            end += 1.0
            change = monitor.tick(5, end, 500.0)
            if 5 in change.entered:
                entered_five = True
        assert entered_five
        assert 5 in monitor.current().object_ids

    def test_replay_collects_changes(self):
        db = make_random_database(num_objects=6, avg_segments=6, seed=36)
        end = db.t_max
        ticks = [(i % 6, end + 1.0 + step, float(step % 7)) for step, i in
                 enumerate(range(18))]
        # Fix times strictly increasing per object.
        ticks = [(obj, end + 1.0 + step, v) for step, (obj, _, v) in enumerate(ticks)]
        changes = replay(db, ticks, window=15.0, k=3)
        assert changes  # at least the initial ranking
        for change in changes:
            assert change.changed

    def test_rejects_bad_parameters(self):
        db = make_random_database(num_objects=4, avg_segments=5, seed=37)
        with pytest.raises(InvalidQueryError):
            SlidingWindowMonitor(db, window=0.0, k=2)
        with pytest.raises(InvalidQueryError):
            SlidingWindowMonitor(db, window=5.0, k=0)
