"""Equivalence suite for the batched index-build pipeline (PRs 2-3).

Every batched builder must produce *byte-identical* artifacts to the
historical scalar path it replaced:

* QUERY1 stored lists for every ``(j1, j2)`` pair (contents, block
  ids, device layout, IO charges),
* QUERY2 node lists (inline and packed) with identical tree wiring,
* BREAKPOINTS2 breakpoint sets, including ``max_r`` truncation and
  the absolute-value (Section 4) variant,
* APPX2+ rescored answers with unchanged IO counts,
* the dyadic candidate pools (scores and dict order).

PR 3 adds the executor dimension: the multi-core fan-out of the three
build pipelines must reproduce the serial artifacts byte for byte on
every backend (serial, thread pool, process pool — including a
single-worker process pool and a tie-heavy dataset), and a worker
failure must propagate without corrupting the device.
"""

import multiprocessing

import numpy as np
import pytest

from repro.approximate import build_breakpoints1, build_breakpoints2
from repro.approximate.dyadic import DyadicIndex
from repro.approximate.methods import APPROXIMATE_METHODS, Appx2Plus
from repro.approximate.query1 import NestedPairIndex
from repro.approximate.toplists import (
    StoredTopList,
    top_kmax_of_column,
    top_kmax_of_columns,
)
from repro.core import PiecewiseLinearFunction, TemporalObject
from repro.core.database import TemporalDatabase
from repro.core.queries import TopKQuery
from repro.parallel import get_executor
from repro.storage import BlockDevice

from _support import make_random_database, random_intervals

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: (backend, workers) combinations the fan-out must be exact under.
EXECUTOR_MATRIX = [
    pytest.param("serial", 1, id="serial"),
    pytest.param("thread", 2, id="thread2"),
    pytest.param(
        "process",
        2,
        id="process2",
        marks=pytest.mark.skipif(not _HAS_FORK, reason="needs fork"),
    ),
    pytest.param(
        "process",
        1,
        id="process1",
        marks=pytest.mark.skipif(not _HAS_FORK, reason="needs fork"),
    ),
]


@pytest.fixture(scope="module")
def setup():
    db = make_random_database(num_objects=40, avg_segments=25, seed=17)
    bp = build_breakpoints1(db, r=21)
    return db, bp


def _device_state(device):
    return (
        device.num_blocks,
        device.stats.writes,
        device.stats.allocations,
    )


class TestTopKmaxOfColumns:
    def test_matches_scalar_per_column(self):
        rng = np.random.default_rng(3)
        ids = rng.permutation(200).astype(np.int64)
        matrix = rng.normal(size=(200, 37))
        for kmax in (1, 5, 50, 200, 500):
            batch_ids, batch_scores = top_kmax_of_columns(ids, matrix, kmax)
            for c in range(matrix.shape[1]):
                ref_ids, ref_scores = top_kmax_of_column(
                    ids, matrix[:, c], kmax
                )
                assert batch_ids[:, c].tobytes() == ref_ids.tobytes()
                assert batch_scores[:, c].tobytes() == ref_scores.tobytes()

    def test_matches_scalar_with_boundary_ties(self):
        """Zero-score ties at the k-th boundary (padded-object case)."""
        rng = np.random.default_rng(4)
        ids = np.arange(60, dtype=np.int64)
        matrix = np.zeros((60, 12))
        matrix[:5] = rng.uniform(1, 2, size=(5, 12))  # few positives
        for kmax in (3, 10, 30):
            batch_ids, batch_scores = top_kmax_of_columns(ids, matrix, kmax)
            for c in range(matrix.shape[1]):
                ref_ids, ref_scores = top_kmax_of_column(
                    ids, matrix[:, c], kmax
                )
                assert batch_ids[:, c].tobytes() == ref_ids.tobytes()
                assert batch_scores[:, c].tobytes() == ref_scores.tobytes()


class TestStoreMany:
    @pytest.mark.parametrize("block_bytes", [4096, 256])
    def test_matches_per_list_store(self, block_bytes):
        rng = np.random.default_rng(5)
        c, k = 9, 40
        ids = rng.integers(0, 1000, size=(c, k)).astype(np.int64)
        scores = rng.normal(size=(c, k))
        dev_a = BlockDevice(block_bytes=block_bytes)
        dev_b = BlockDevice(block_bytes=block_bytes)
        singles = [
            StoredTopList.store(dev_a, ids[j], scores[j]) for j in range(c)
        ]
        bulk = StoredTopList.store_many(dev_b, ids, scores)
        assert _device_state(dev_a) == _device_state(dev_b)
        for one, many in zip(singles, bulk):
            assert one.block_ids == many.block_ids
            assert one.count == many.count
            ids_a, scores_a = one.read_top(dev_a, k)
            ids_b, scores_b = many.read_top(dev_b, k)
            assert ids_a.tobytes() == ids_b.tobytes()
            assert scores_a.tobytes() == scores_b.tobytes()

    def test_store_many_snapshots_caller_arrays(self):
        """Mutating the input arrays after store_many must not change
        what read_top returns (block payloads are device-owned)."""
        rng = np.random.default_rng(8)
        ids = rng.integers(0, 99, size=(4, 10)).astype(np.int64)
        scores = rng.normal(size=(4, 10))
        device = BlockDevice()
        stored = StoredTopList.store_many(device, ids, scores)
        want = [list_.read_top(device, 10) for list_ in stored]
        ids[:] = -1
        scores[:] = np.nan
        for list_, (want_ids, want_scores) in zip(stored, want):
            got_ids, got_scores = list_.read_top(device, 10)
            assert got_ids.tobytes() == want_ids.tobytes()
            assert got_scores.tobytes() == want_scores.tobytes()

    def test_allocate_many_matches_allocate_loop(self):
        dev_a, dev_b = BlockDevice(), BlockDevice()
        payloads = [np.arange(i + 1) for i in range(7)]
        ids_a = [dev_a.allocate(p) for p in payloads]
        ids_b = dev_b.allocate_many(payloads)
        assert ids_a == ids_b
        assert _device_state(dev_a) == _device_state(dev_b)


class TestQuery1BuildEquivalence:
    @pytest.mark.parametrize("block_bytes", [4096, 512])
    def test_byte_identical_lists_and_layout(self, setup, block_bytes):
        db, bp = setup
        dev_s = BlockDevice(block_bytes=block_bytes)
        dev_b = BlockDevice(block_bytes=block_bytes)
        scalar = NestedPairIndex(dev_s, bp, kmax=15).build(db, batched=False)
        batched = NestedPairIndex(dev_b, bp, kmax=15).build(db, batched=True)
        assert _device_state(dev_s) == _device_state(dev_b)
        assert set(scalar._lists) == set(batched._lists)
        for key, stored_s in scalar._lists.items():
            stored_b = batched._lists[key]
            assert stored_s.block_ids == stored_b.block_ids
            ids_s, scores_s = stored_s.read_top(dev_s, 15)
            ids_b, scores_b = stored_b.read_top(dev_b, 15)
            assert ids_s.tobytes() == ids_b.tobytes(), key
            assert scores_s.tobytes() == scores_b.tobytes(), key

    def test_identical_query_results(self, setup):
        db, bp = setup
        scalar = NestedPairIndex(BlockDevice(), bp, kmax=15).build(
            db, batched=False
        )
        batched = NestedPairIndex(BlockDevice(), bp, kmax=15).build(
            db, batched=True
        )
        for t1, t2 in random_intervals(db, 25, seed=6):
            res_s = scalar.query(t1, t2, 10)
            res_b = batched.query(t1, t2, 10)
            assert res_s.object_ids == res_b.object_ids
            assert res_s.scores == res_b.scores  # exact float equality


class TestQuery2BuildEquivalence:
    @staticmethod
    def _walk(index):
        """Preorder nodes of the segment tree."""
        nodes = []
        stack = [index.root_id]
        while stack:
            node = index.device.read(stack.pop())
            nodes.append(node)
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)
        return nodes

    @pytest.mark.parametrize("block_bytes", [4096, 256])
    def test_byte_identical_node_lists(self, setup, block_bytes):
        # block_bytes=256 forces the non-inline StoredTopList path
        # (capacity 16, inline budget 14 < kmax).
        db, bp = setup
        dev_s = BlockDevice(block_bytes=block_bytes)
        dev_b = BlockDevice(block_bytes=block_bytes)
        scalar = DyadicIndex(dev_s, bp, kmax=15).build(db, batched=False)
        batched = DyadicIndex(dev_b, bp, kmax=15).build(db, batched=True)
        assert scalar.root_id == batched.root_id
        assert scalar.num_nodes == batched.num_nodes
        assert _device_state(dev_s) == _device_state(dev_b)
        for node_s, node_b in zip(self._walk(scalar), self._walk(batched)):
            assert (node_s.lo, node_s.hi) == (node_b.lo, node_b.hi)
            assert (node_s.left, node_s.right) == (node_b.left, node_b.right)
            if node_s.inline_rows is not None:
                assert node_b.inline_rows is not None
                ids_s, scores_s = node_s.inline_rows
                ids_b, scores_b = node_b.inline_rows
            else:
                assert node_b.top_list is not None
                assert node_s.top_list.block_ids == node_b.top_list.block_ids
                ids_s, scores_s = node_s.top_list.read_top(dev_s, 15)
                ids_b, scores_b = node_b.top_list.read_top(dev_b, 15)
            assert ids_s.tobytes() == ids_b.tobytes()
            assert scores_s.tobytes() == scores_b.tobytes()

    def test_candidates_match_historical_loop(self, setup):
        db, bp = setup
        index = DyadicIndex(BlockDevice(), bp, kmax=15).build(db)

        def reference(t1, t2, k):
            snapped = index.snap_indices(t1, t2)
            if snapped is None:
                return {}
            scores = {}
            for node in index.decompose(*snapped):
                if node.inline_rows is not None:
                    ids, vals = node.inline_rows
                    ids, vals = ids[:k], vals[:k]
                else:
                    ids, vals = node.top_list.read_top(index.device, k)
                for object_id, value in zip(ids, vals):
                    scores[int(object_id)] = scores.get(
                        int(object_id), 0.0
                    ) + float(value)
            return scores

        for t1, t2 in random_intervals(db, 30, seed=8):
            ref = reference(t1, t2, 10)
            got = index.candidates(t1, t2, 10)
            # Same keys in the same insertion order, same exact floats.
            assert list(ref.items()) == list(got.items())


class TestBreakpoints2Equivalence:
    @pytest.mark.parametrize("epsilon", [0.05, 0.01, 0.002, 0.0005])
    def test_byte_identical_breakpoint_sets(self, epsilon):
        for seed in (0, 7, 23):
            db = make_random_database(
                num_objects=35, avg_segments=20, seed=seed
            )
            scalar = build_breakpoints2(db, epsilon, batched=False)
            batched = build_breakpoints2(db, epsilon, batched=True)
            assert scalar.times.tobytes() == batched.times.tobytes()
            assert scalar.r == batched.r

    def test_max_r_truncation_identical(self):
        db = make_random_database(num_objects=30, avg_segments=20, seed=11)
        for cap in (5, 12, 40):
            scalar = build_breakpoints2(
                db, 1e-5, max_r=cap, batched=False
            )
            batched = build_breakpoints2(db, 1e-5, max_r=cap, batched=True)
            assert scalar.truncated == batched.truncated
            assert scalar.times.tobytes() == batched.times.tobytes()

    def test_absolute_variant_identical(self):
        db = make_random_database(
            num_objects=25, avg_segments=18, seed=13, negative=True
        )
        scalar = build_breakpoints2(
            db, 0.005, use_absolute=True, batched=False
        )
        batched = build_breakpoints2(
            db, 0.005, use_absolute=True, batched=True
        )
        assert scalar.times.tobytes() == batched.times.tobytes()


class TestAppx2PlusRescoring:
    def test_batched_scores_and_ios_match_scalar_walks(self):
        db = make_random_database(num_objects=37, avg_segments=22, seed=5)
        method = Appx2Plus(epsilon=0.004, kmax=12)
        method.build(db)
        checked = 0
        for t1, t2 in random_intervals(db, 25, seed=9):
            pool = method.index.candidates(t1, t2, 8)
            if not pool:
                continue
            ids = np.fromiter(pool.keys(), dtype=np.int64, count=len(pool))
            before = method.io_stats.reads
            scalar = np.asarray(
                [method.rescorer.score(int(i), t1, t2) for i in ids]
            )
            scalar_reads = method.io_stats.reads - before
            before = method.io_stats.reads
            batched = method.rescorer.score_many(ids, t1, t2)
            batched_reads = method.io_stats.reads - before
            assert scalar.tobytes() == batched.tobytes()
            assert scalar_reads == batched_reads
            checked += 1
        assert checked > 10

    def test_all_methods_answers_unchanged(self):
        """Each APPX method built batched answers exactly like a scalar
        rebuild of the same structures on the same breakpoints."""
        db = make_random_database(num_objects=30, avg_segments=20, seed=31)
        bp2 = build_breakpoints2(db, 0.004, batched=False)
        bp1 = build_breakpoints1(db, r=bp2.r)
        for name, cls in APPROXIMATE_METHODS.items():
            prebuilt = bp1 if name.endswith("-B") else bp2
            method = cls(kmax=12, breakpoints=prebuilt)
            method.build(db)
            if name.startswith("APPX1"):
                reference = NestedPairIndex(
                    BlockDevice(), prebuilt, kmax=12
                ).build(db, batched=False)
            else:
                reference = DyadicIndex(
                    BlockDevice(), prebuilt, kmax=12
                ).build(db, batched=False)
            for t1, t2 in random_intervals(db, 15, seed=12):
                got = method.query(TopKQuery(t1, t2, 8))
                if name == "APPX2+":
                    pool = reference.candidates(t1, t2, 8)
                    if not pool:
                        want_ids, want_scores = [], []
                    else:
                        ids = np.fromiter(
                            pool.keys(), dtype=np.int64, count=len(pool)
                        )
                        exact = np.asarray(
                            [
                                method.rescorer.score(int(i), t1, t2)
                                for i in ids
                            ]
                        )
                        from repro.core.results import top_k_from_arrays

                        want = top_k_from_arrays(ids, exact, 8)
                        want_ids, want_scores = want.object_ids, want.scores
                else:
                    want = reference.query(t1, t2, 8)
                    want_ids, want_scores = want.object_ids, want.scores
                assert got.object_ids == want_ids, name
                assert got.scores == want_scores, name


def _tie_heavy_database() -> TemporalDatabase:
    """A database where most objects tie exactly on every interval.

    25 identical constant-valued objects produce equal scores for
    every breakpoint pair (the canonical ``(-score, id)`` boundary
    ties the batcher must repair); a few varying objects keep the
    breakpoint constructions non-degenerate.
    """
    objects = [
        TemporalObject(
            i,
            PiecewiseLinearFunction(
                np.array([0.0, 100.0]), np.array([1.0, 1.0])
            ),
        )
        for i in range(25)
    ]
    rng = np.random.default_rng(99)
    for i in range(25, 30):
        times = np.unique(rng.uniform(0, 100, 12))
        objects.append(
            TemporalObject(
                i,
                PiecewiseLinearFunction(
                    times, rng.uniform(0, 5, times.size)
                ),
            )
        )
    return TemporalDatabase(objects, span=(0.0, 100.0), pad=True)


def _assert_same_query1(dev_a, idx_a, dev_b, idx_b, kmax):
    assert _device_state(dev_a) == _device_state(dev_b)
    assert set(idx_a._lists) == set(idx_b._lists)
    for key, stored_a in idx_a._lists.items():
        stored_b = idx_b._lists[key]
        assert stored_a.block_ids == stored_b.block_ids, key
        ids_a, scores_a = stored_a.read_top(dev_a, kmax)
        ids_b, scores_b = stored_b.read_top(dev_b, kmax)
        assert ids_a.tobytes() == ids_b.tobytes(), key
        assert scores_a.tobytes() == scores_b.tobytes(), key


def _assert_same_query2(dev_a, idx_a, dev_b, idx_b, kmax):
    assert idx_a.root_id == idx_b.root_id
    assert idx_a.num_nodes == idx_b.num_nodes
    assert _device_state(dev_a) == _device_state(dev_b)
    for node_a, node_b in zip(
        TestQuery2BuildEquivalence._walk(idx_a),
        TestQuery2BuildEquivalence._walk(idx_b),
    ):
        assert (node_a.lo, node_a.hi) == (node_b.lo, node_b.hi)
        assert (node_a.left, node_a.right) == (node_b.left, node_b.right)
        if node_a.inline_rows is not None:
            ids_a, scores_a = node_a.inline_rows
            ids_b, scores_b = node_b.inline_rows
        else:
            assert node_a.top_list.block_ids == node_b.top_list.block_ids
            ids_a, scores_a = node_a.top_list.read_top(dev_a, kmax)
            ids_b, scores_b = node_b.top_list.read_top(dev_b, kmax)
        assert ids_a.tobytes() == ids_b.tobytes()
        assert scores_a.tobytes() == scores_b.tobytes()


@pytest.mark.parametrize("backend,workers", EXECUTOR_MATRIX)
class TestExecutorBackendEquivalence:
    """Fan-out determinism: every backend reproduces the serial build."""

    def test_query1_byte_identical(self, setup, backend, workers):
        db, bp = setup
        dev_ref = BlockDevice()
        ref = NestedPairIndex(dev_ref, bp, kmax=15).build(
            db, executor=get_executor("serial", 1)
        )
        dev = BlockDevice()
        idx = NestedPairIndex(dev, bp, kmax=15).build(
            db, executor=get_executor(backend, workers)
        )
        _assert_same_query1(dev_ref, ref, dev, idx, 15)

    def test_query2_byte_identical(self, setup, backend, workers):
        db, bp = setup
        dev_ref = BlockDevice()
        ref = DyadicIndex(dev_ref, bp, kmax=15).build(
            db, executor=get_executor("serial", 1)
        )
        dev = BlockDevice()
        idx = DyadicIndex(dev, bp, kmax=15).build(
            db, executor=get_executor(backend, workers)
        )
        _assert_same_query2(dev_ref, ref, dev, idx, 15)

    @pytest.mark.parametrize("epsilon", [0.01, 0.0005])
    def test_breakpoints2_byte_identical(
        self, setup, backend, workers, epsilon
    ):
        db, _ = setup
        ref = build_breakpoints2(
            db, epsilon, executor=get_executor("serial", 1)
        )
        got = build_breakpoints2(
            db, epsilon, executor=get_executor(backend, workers)
        )
        assert ref.times.tobytes() == got.times.tobytes()

    def test_tie_heavy_dataset_byte_identical(self, backend, workers):
        db = _tie_heavy_database()
        bp = build_breakpoints1(db, r=11)
        dev_ref = BlockDevice()
        ref = NestedPairIndex(dev_ref, bp, kmax=10).build(
            db, executor=get_executor("serial", 1)
        )
        dev = BlockDevice()
        idx = NestedPairIndex(dev, bp, kmax=10).build(
            db, executor=get_executor(backend, workers)
        )
        _assert_same_query1(dev_ref, ref, dev, idx, 10)
        dev_ref2, dev2 = BlockDevice(), BlockDevice()
        dref = DyadicIndex(dev_ref2, bp, kmax=10).build(
            db, executor=get_executor("serial", 1)
        )
        didx = DyadicIndex(dev2, bp, kmax=10).build(
            db, executor=get_executor(backend, workers)
        )
        _assert_same_query2(dev_ref2, dref, dev2, didx, 10)


def _boom_chunk(bounds):
    raise RuntimeError("injected worker failure")


class TestWorkerFaults:
    """A failed worker must propagate cleanly, device untouched."""

    @pytest.mark.parametrize(
        "backend",
        [
            "thread",
            pytest.param(
                "process",
                marks=pytest.mark.skipif(not _HAS_FORK, reason="needs fork"),
            ),
        ],
    )
    def test_query1_worker_failure_leaves_device_clean(
        self, setup, backend, monkeypatch
    ):
        db, bp = setup
        monkeypatch.setattr(
            "repro.approximate.query1.query1_toplists_chunk", _boom_chunk
        )
        device = BlockDevice()
        before = (_device_state(device), device.stats.reads)
        with pytest.raises(RuntimeError, match="injected worker failure"):
            NestedPairIndex(device, bp, kmax=15).build(
                db, executor=get_executor(backend, 2)
            )
        assert (_device_state(device), device.stats.reads) == before
        assert device.num_blocks == 0
