"""Tests for the synthetic Temp/Meme generators and the workload."""

import numpy as np
import pytest

from repro.datasets import generate_meme, generate_temp, random_queries


class TestTempGenerator:
    def test_shape(self):
        db = generate_temp(num_objects=50, avg_readings=40, seed=1)
        assert db.num_objects == 50
        assert 20 <= db.avg_segments  # padding adds a couple of knots
        assert db.span == (0.0, 1.0e6)

    def test_deterministic(self):
        a = generate_temp(num_objects=10, avg_readings=20, seed=9)
        b = generate_temp(num_objects=10, avg_readings=20, seed=9)
        for obj_a, obj_b in zip(a, b):
            assert obj_a.function == obj_b.function

    def test_seed_changes_data(self):
        a = generate_temp(num_objects=5, avg_readings=20, seed=1)
        b = generate_temp(num_objects=5, avg_readings=20, seed=2)
        assert any(
            not np.array_equal(x.function.values, y.function.values)
            for x, y in zip(a, b)
        )

    def test_positive_scores(self):
        db = generate_temp(num_objects=20, avg_readings=30, seed=3)
        for obj in db:
            assert np.all(obj.function.values >= 0)

    def test_station_heterogeneity(self):
        """Stations must differ persistently (drives stable top-k)."""
        db = generate_temp(num_objects=40, avg_readings=50, seed=4)
        masses = np.asarray([obj.total_mass for obj in db])
        assert masses.std() / masses.mean() > 0.01


class TestMemeGenerator:
    def test_shape(self):
        db = generate_meme(num_objects=80, avg_records=10, seed=1)
        assert db.num_objects == 80

    def test_bursty_lifetimes(self):
        """Most objects live on a tiny fraction of the domain."""
        db = generate_meme(num_objects=100, avg_records=10, seed=2)
        span = db.t_max - db.t_min
        lifetimes = []
        for obj in db:
            fn = obj.function
            active = fn.times[np.abs(fn.values) > 0]
            if active.size >= 2:
                lifetimes.append((active[-1] - active[0]) / span)
        assert np.median(lifetimes) < 0.2

    def test_heavy_tailed_mass(self):
        db = generate_meme(num_objects=200, avg_records=10, seed=3)
        masses = np.sort([obj.total_mass for obj in db])[::-1]
        top_decile = masses[:20].sum()
        assert top_decile > masses.sum() * 0.3

    def test_nonnegative_counts(self):
        db = generate_meme(num_objects=50, avg_records=8, seed=4)
        for obj in db:
            assert np.all(obj.function.values >= 0)


class TestWorkload:
    def test_query_shape(self):
        db = generate_temp(num_objects=10, avg_readings=20, seed=5)
        queries = random_queries(db, count=20, interval_fraction=0.2, k=7, seed=1)
        assert len(queries) == 20
        span = db.t_max - db.t_min
        for q in queries:
            assert q.k == 7
            assert q.length == pytest.approx(span * 0.2)
            assert db.t_min <= q.t1 <= q.t2 <= db.t_max

    def test_deterministic(self):
        db = generate_temp(num_objects=10, avg_readings=20, seed=5)
        a = random_queries(db, count=5, seed=3)
        b = random_queries(db, count=5, seed=3)
        assert [(q.t1, q.t2) for q in a] == [(q.t1, q.t2) for q in b]
