"""Unit tests for the external priority queue."""

import numpy as np
import pytest

from repro.extpq import ExternalPriorityQueue
from repro.storage import BlockDevice


class TestBasics:
    def test_push_pop_sorted(self):
        pq = ExternalPriorityQueue(BlockDevice(), memory_capacity=4)
        for key in [5, 1, 3, 2, 4]:
            pq.push(key, f"p{key}")
        out = [pq.pop() for _ in range(5)]
        assert [k for k, _ in out] == [1, 2, 3, 4, 5]
        assert [p for _, p in out] == ["p1", "p2", "p3", "p4", "p5"]

    def test_len_and_bool(self):
        pq = ExternalPriorityQueue(BlockDevice(), memory_capacity=4)
        assert not pq
        pq.push(1.0)
        assert len(pq) == 1 and pq

    def test_pop_empty_raises(self):
        pq = ExternalPriorityQueue(BlockDevice(), memory_capacity=4)
        with pytest.raises(IndexError):
            pq.pop()

    def test_peek(self):
        pq = ExternalPriorityQueue(BlockDevice(), memory_capacity=4)
        pq.push(3.0, "c")
        pq.push(1.0, "a")
        assert pq.peek() == (1.0, "a")
        assert len(pq) == 2  # peek does not remove

    def test_peek_empty_raises(self):
        pq = ExternalPriorityQueue(BlockDevice(), memory_capacity=4)
        with pytest.raises(IndexError):
            pq.peek()

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            ExternalPriorityQueue(BlockDevice(), memory_capacity=1)


class TestSpilling:
    def test_spills_produce_ios(self):
        dev = BlockDevice(block_bytes=256)
        pq = ExternalPriorityQueue(dev, memory_capacity=8, entry_bytes=16)
        for i in range(100):
            pq.push(float(i))
        assert dev.stats.writes > 0  # runs were spilled

    def test_sorted_across_spills(self):
        rng = np.random.default_rng(0)
        dev = BlockDevice(block_bytes=256)
        pq = ExternalPriorityQueue(dev, memory_capacity=16)
        keys = rng.uniform(0, 1000, 1000)
        for key in keys:
            pq.push(float(key))
        out = [pq.pop()[0] for _ in range(1000)]
        assert out == sorted(keys.tolist())

    def test_interleaved_push_pop(self):
        rng = np.random.default_rng(1)
        dev = BlockDevice(block_bytes=256)
        pq = ExternalPriorityQueue(dev, memory_capacity=8)
        import heapq

        reference = []
        for step in range(2000):
            if reference and rng.random() < 0.45:
                expect = heapq.heappop(reference)
                got, _ = pq.pop()
                assert got == expect
            else:
                key = float(rng.integers(0, 500))
                heapq.heappush(reference, key)
                pq.push(key)
        while reference:
            assert pq.pop()[0] == heapq.heappop(reference)
        assert len(pq) == 0

    def test_duplicate_keys_fifo_safe(self):
        pq = ExternalPriorityQueue(BlockDevice(), memory_capacity=2)
        for i in range(10):
            pq.push(7.0, i)
        popped = [pq.pop() for _ in range(10)]
        assert all(k == 7.0 for k, _ in popped)
        assert sorted(p for _, p in popped) == list(range(10))
