"""Unit tests for piecewise linear functions and prefix sums."""

import numpy as np
import pytest

from repro.core.errors import InvalidFunctionError
from repro.core.plf import PiecewiseLinearFunction, from_samples


class TestConstruction:
    def test_requires_two_knots(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([1.0], [2.0])

    def test_requires_increasing_times(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0, 2, 2], [0, 1, 2])
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0, 2, 1], [0, 1, 2])

    def test_requires_matching_lengths(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0, 1, 2], [0, 1])

    def test_rejects_non_finite(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0, 1], [0, np.inf])
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0, np.nan], [0, 1])

    def test_shape_properties(self, tiny_plf):
        assert tiny_plf.num_segments == 4
        assert tiny_plf.start == 0
        assert tiny_plf.end == 8
        assert tiny_plf.span == (0, 8)

    def test_equality(self, tiny_plf):
        clone = PiecewiseLinearFunction(tiny_plf.times.copy(), tiny_plf.values.copy())
        assert clone == tiny_plf
        assert PiecewiseLinearFunction([0, 1], [1, 1]) != tiny_plf


class TestEvaluation:
    def test_values_at_knots(self, tiny_plf):
        for t, v in zip([0, 2, 4, 6, 8], [0, 4, 0, 0, 2]):
            assert tiny_plf.value(t) == v

    def test_interpolated_values(self, tiny_plf):
        assert tiny_plf.value(1) == 2
        assert tiny_plf.value(3) == 2
        assert tiny_plf.value(7) == 1

    def test_zero_outside_span(self, tiny_plf):
        assert tiny_plf.value(-1) == 0.0
        assert tiny_plf.value(9) == 0.0

    def test_value_many_matches_scalar(self, tiny_plf):
        ts = np.linspace(-2, 10, 101)
        many = tiny_plf.value_many(ts)
        for t, v in zip(ts, many):
            assert v == pytest.approx(tiny_plf.value(float(t)))

    def test_slopes(self, tiny_plf):
        assert np.allclose(tiny_plf.slopes, [2, -2, 0, 1])

    def test_segments_iteration(self, tiny_plf):
        segs = list(tiny_plf.segments())
        assert len(segs) == 4
        assert segs[0].t0 == 0 and segs[0].t1 == 2

    def test_segment_index_error(self, tiny_plf):
        with pytest.raises(IndexError):
            tiny_plf.segment(4)


class TestIntegration:
    def test_prefix_masses(self, tiny_plf):
        assert np.allclose(tiny_plf.prefix_masses, [0, 4, 8, 8, 10])

    def test_total_mass(self, tiny_plf):
        assert tiny_plf.total_mass == pytest.approx(10)

    def test_cumulative_at_knots(self, tiny_plf):
        for t, c in zip([0, 2, 4, 6, 8], [0, 4, 8, 8, 10]):
            assert tiny_plf.cumulative(t) == pytest.approx(c)

    def test_cumulative_clamps(self, tiny_plf):
        assert tiny_plf.cumulative(-5) == 0.0
        assert tiny_plf.cumulative(99) == pytest.approx(10)

    def test_cumulative_mid_segment(self, tiny_plf):
        # Over [0,1] the triangle accumulates 1/2 * 1 * 2 = 1.
        assert tiny_plf.cumulative(1) == pytest.approx(1)

    def test_integral_difference_identity(self, tiny_plf):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = np.sort(rng.uniform(-1, 9, 2))
            expected = tiny_plf.cumulative(b) - tiny_plf.cumulative(a)
            assert tiny_plf.integral(float(a), float(b)) == pytest.approx(expected)

    def test_integral_reversed_is_zero(self, tiny_plf):
        assert tiny_plf.integral(5, 3) == 0.0

    def test_integral_additivity(self, tiny_plf):
        assert tiny_plf.integral(0, 3) + tiny_plf.integral(3, 8) == pytest.approx(
            tiny_plf.total_mass
        )

    def test_cumulative_many_matches_scalar(self, tiny_plf):
        ts = np.linspace(-1, 9, 201)
        many = tiny_plf.cumulative_many(ts)
        for t, c in zip(ts, many):
            assert c == pytest.approx(tiny_plf.cumulative(float(t)), abs=1e-12)

    def test_integral_matches_quadrature(self):
        rng = np.random.default_rng(8)
        times = np.unique(rng.uniform(0, 50, 40))
        values = rng.uniform(0, 10, times.size)
        plf = PiecewiseLinearFunction(times, values)
        for _ in range(20):
            a, b = np.sort(rng.uniform(0, 50, 2))
            xs = np.linspace(a, b, 20001)
            expected = np.trapezoid(plf.value_many(xs), xs)
            assert plf.integral(float(a), float(b)) == pytest.approx(
                expected, rel=1e-3, abs=1e-3
            )


class TestInverseCumulative:
    def test_round_trip(self, tiny_plf):
        for target in [0.5, 1, 3.9, 4, 5.5, 8, 9.9]:
            t = tiny_plf.inverse_cumulative(target)
            assert tiny_plf.cumulative(t) == pytest.approx(target, abs=1e-9)

    def test_unreachable_returns_inf(self, tiny_plf):
        assert tiny_plf.inverse_cumulative(10.0001) == float("inf")

    def test_zero_target(self, tiny_plf):
        assert tiny_plf.inverse_cumulative(0.0) == tiny_plf.start

    def test_skips_flat_zero_piece(self, tiny_plf):
        # Mass 8 is reached at t=4 but the flat [4,6] piece adds nothing;
        # any probe just past 8 must land beyond t=6.
        t = tiny_plf.inverse_cumulative(8.0 + 1e-9)
        assert t > 6.0

    def test_smallest_t_semantics(self, tiny_plf):
        # Exactly 8: the smallest t with C(t) >= 8 is 4 (start of plateau).
        assert tiny_plf.inverse_cumulative(8.0) == pytest.approx(4.0)


class TestSection4Extensions:
    def test_absolute_of_nonnegative_is_identity(self, tiny_plf):
        assert tiny_plf.absolute() == tiny_plf

    def test_absolute_splits_crossings(self):
        plf = PiecewiseLinearFunction([0, 2], [-2, 2])
        ab = plf.absolute()
        assert ab.num_segments == 2
        assert ab.value(1) == pytest.approx(0)
        assert ab.value(0) == 2
        assert ab.total_mass == pytest.approx(2)

    def test_absolute_preserves_absolute_integral(self):
        rng = np.random.default_rng(4)
        times = np.unique(rng.uniform(0, 20, 15))
        values = rng.uniform(-5, 5, times.size)
        plf = PiecewiseLinearFunction(times, values)
        ab = plf.absolute()
        xs = np.linspace(times[0], times[-1], 50001)
        expected = np.trapezoid(np.abs(plf.value_many(xs)), xs)
        assert ab.total_mass == pytest.approx(expected, rel=1e-3)

    def test_padded_extends_span_with_zero_mass(self, tiny_plf):
        padded = tiny_plf.padded(-10, 20)
        assert padded.start == -10 and padded.end == 20
        assert padded.total_mass == pytest.approx(tiny_plf.total_mass, abs=1e-4)
        assert padded.value(-5) == 0.0
        assert padded.value(15) == 0.0

    def test_padded_rejects_shrinking(self, tiny_plf):
        with pytest.raises(InvalidFunctionError):
            tiny_plf.padded(1, 20)

    def test_padded_noop_when_span_matches(self, tiny_plf):
        padded = tiny_plf.padded(0, 8)
        assert padded == tiny_plf

    def test_with_appended(self, tiny_plf):
        extended = tiny_plf.with_appended(10, 4)
        assert extended.num_segments == 5
        assert extended.total_mass == pytest.approx(10 + 0.5 * 2 * (2 + 4))

    def test_with_appended_rejects_backwards(self, tiny_plf):
        with pytest.raises(InvalidFunctionError):
            tiny_plf.with_appended(8, 1)


class TestFromSamples:
    def test_sorts_and_dedups(self):
        plf = from_samples([3, 1, 2, 2], [30, 10, 15, 20])
        assert np.allclose(plf.times, [1, 2, 3])
        # Last value wins for the duplicate timestamp.
        assert plf.value(2) == 20

    def test_matches_direct_construction(self):
        plf = from_samples([0, 1, 2], [5, 6, 7])
        assert plf == PiecewiseLinearFunction([0, 1, 2], [5, 6, 7])
