"""Tests for holistic (quantile/median) aggregation."""

import numpy as np
import pytest

from repro.core import PiecewiseLinearFunction
from repro.core.errors import InvalidQueryError
from repro.holistic import (
    QuantileRanker,
    interval_median,
    interval_quantile,
    measure_below,
)

from _support import make_random_database


@pytest.fixture()
def ramp():
    """g(t) = t on [0, 10]: quantiles are analytic."""
    return PiecewiseLinearFunction([0, 10], [0, 10])


class TestMeasureBelow:
    def test_ramp(self, ramp):
        # g <= 4 on [0, 4]: measure 4.
        assert measure_below(ramp, 0, 10, 4.0) == pytest.approx(4)

    def test_above_max(self, ramp):
        assert measure_below(ramp, 0, 10, 100.0) == pytest.approx(10)

    def test_below_min(self, ramp):
        assert measure_below(ramp, 2, 10, 1.0) == 0.0

    def test_constant_function(self):
        plf = PiecewiseLinearFunction([0, 6], [3, 3])
        assert measure_below(plf, 0, 6, 3.0) == pytest.approx(6)
        assert measure_below(plf, 0, 6, 2.9) == 0.0

    def test_outside_span_counts_as_zero_value(self):
        plf = PiecewiseLinearFunction([4, 6], [5, 5])
        # Query [0, 6]: 4 units of implicit zero + 2 units at 5.
        assert measure_below(plf, 0, 6, 0.0) == pytest.approx(4)
        assert measure_below(plf, 0, 6, 5.0) == pytest.approx(6)

    def test_monotone_in_v(self, ramp):
        vs = np.linspace(-1, 11, 30)
        ms = [measure_below(ramp, 0, 10, float(v)) for v in vs]
        assert all(b >= a - 1e-12 for a, b in zip(ms, ms[1:]))


class TestIntervalQuantile:
    def test_ramp_quantiles(self, ramp):
        for phi in (0.1, 0.25, 0.5, 0.9, 1.0):
            assert interval_quantile(ramp, 0, 10, phi) == pytest.approx(10 * phi)

    def test_median_shortcut(self, ramp):
        assert interval_median(ramp, 0, 10) == pytest.approx(5)

    def test_subinterval(self, ramp):
        # Over [4, 8], values uniform on [4, 8]: median 6.
        assert interval_median(ramp, 4, 8) == pytest.approx(6)

    def test_v_shape(self):
        plf = PiecewiseLinearFunction([0, 5, 10], [10, 0, 10])
        # Values distribution symmetric: median at 5.
        assert interval_median(plf, 0, 10) == pytest.approx(5)

    def test_matches_dense_sampling(self):
        db = make_random_database(num_objects=5, avg_segments=15, seed=88)
        rng = np.random.default_rng(1)
        for obj in db:
            t1, t2 = np.sort(rng.uniform(*db.span, 2))
            if t2 - t1 < 1.0:
                t2 = t1 + 1.0
            ts = np.linspace(t1, t2, 200001)
            sampled = np.quantile(obj.function.value_many(ts), 0.5)
            exact = interval_median(obj.function, float(t1), float(t2))
            assert exact == pytest.approx(sampled, abs=0.05)

    def test_rejects_bad_phi(self, ramp):
        with pytest.raises(InvalidQueryError):
            interval_quantile(ramp, 0, 10, 0.0)
        with pytest.raises(InvalidQueryError):
            interval_quantile(ramp, 0, 10, 1.5)

    def test_rejects_empty_interval(self, ramp):
        with pytest.raises(InvalidQueryError):
            interval_quantile(ramp, 5, 5, 0.5)

    def test_quantile_monotone_in_phi(self, ramp):
        db = make_random_database(num_objects=3, avg_segments=12, seed=89)
        fn = db.get(0).function
        qs = [interval_quantile(fn, 10, 90, phi) for phi in np.linspace(0.05, 1, 20)]
        assert all(b >= a - 1e-9 for a, b in zip(qs, qs[1:]))


class TestQuantileRanker:
    def test_ranking_differs_from_sum(self):
        """Median ranking is robust to spikes — the outlier-sensitivity
        motivation from the paper's introduction."""
        # Spiky: baseline 1 plus a huge spike (sum ~ 10 + 30 = 40, median 1).
        # Steady: constant 3 (sum 30, median 3).
        spiky = PiecewiseLinearFunction(
            [0, 4.9, 5, 5.1, 10], [1, 1, 300, 1, 1]
        )
        steady = PiecewiseLinearFunction([0, 10], [3, 3])
        from repro.core import TemporalDatabase, TemporalObject

        db = TemporalDatabase(
            [TemporalObject(0, spiky), TemporalObject(1, steady)],
            span=(0, 10),
            pad=True,
        )
        # By sum the spike wins; by median the steady object wins.
        assert db.brute_force_top_k(0, 10, 1).object_ids == [0]
        ranker = QuantileRanker(db, phi=0.5)
        assert ranker.query(0, 10, 1).object_ids == [1]

    def test_matches_per_object_quantiles(self):
        db = make_random_database(num_objects=12, avg_segments=10, seed=90)
        ranker = QuantileRanker(db, phi=0.75)
        res = ranker.query(20, 80, 12)
        for item in res:
            assert item.score == pytest.approx(
                interval_quantile(db.get(item.object_id).function, 20, 80, 0.75)
            )
        assert res.scores == sorted(res.scores, reverse=True)

    def test_bad_k(self):
        db = make_random_database(num_objects=3, avg_segments=5, seed=91)
        with pytest.raises(InvalidQueryError):
            QuantileRanker(db).query(0, 10, 0)
