"""Failure injection: IO errors must propagate cleanly, not corrupt.

The simulated device lets us script read failures at exact points and
verify that (a) errors surface as exceptions rather than wrong
answers, and (b) a structure remains fully usable after a failed
operation (nothing was mutated mid-query).

The second half exercises the resilience layer on top: deterministic
:class:`~repro.faults.FaultPlan` streams, retry/backoff, replica
failover (answers bit-identical to healthy), graceful degradation
(partial answers are *flagged*, never silently wrong), and the storage
tier's corrupt-segment quarantine + rebuild-from-source path.
"""

import pytest

from repro.core import TopKQuery
from repro.core.errors import (
    NodeUnavailable,
    PartialResultError,
    PersistenceError,
)
from repro.datasets import sample_workload
from repro.engine import TemporalRankingEngine
from repro.exact import Exact1, Exact3
from repro.faults import (
    CRASH,
    INSTANT_RETRY_POLICY,
    TRANSIENT,
    FaultPlan,
    RetryPolicy,
)
from repro.storage import BlockDevice, BlockDeviceError

from _support import make_random_database


class FlakyDevice(BlockDevice):
    """A device that fails the Nth read after arming."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._fail_in = None

    def arm(self, fail_in: int) -> None:
        self._fail_in = fail_in

    def read(self, block_id):
        if self._fail_in is not None:
            self._fail_in -= 1
            if self._fail_in <= 0:
                self._fail_in = None
                raise BlockDeviceError("injected read failure")
        return super().read(block_id)


def flaky_exact3(db):
    method = Exact3()
    flaky = FlakyDevice(name="flaky")
    # Swap the device before building (tree must share it).
    method.device = flaky
    from repro.intervaltree import ExternalIntervalTree

    method.tree = ExternalIntervalTree(flaky, value_columns=4)
    method.build(db)
    return method, flaky


class TestReadFailures:
    def test_error_propagates(self):
        db = make_random_database(num_objects=15, avg_segments=10, seed=81)
        method, flaky = flaky_exact3(db)
        flaky.arm(3)
        with pytest.raises(BlockDeviceError):
            method.query(TopKQuery(10, 80, 5))

    def test_usable_after_failure(self):
        db = make_random_database(num_objects=15, avg_segments=10, seed=81)
        method, flaky = flaky_exact3(db)
        ref = db.brute_force_top_k(10, 80, 5)
        flaky.arm(2)
        with pytest.raises(BlockDeviceError):
            method.query(TopKQuery(10, 80, 5))
        # The failed query must not have corrupted anything.
        got = method.query(TopKQuery(10, 80, 5))
        assert got.object_ids == ref.object_ids

    def test_repeated_failures_then_success(self):
        db = make_random_database(num_objects=40, avg_segments=40, seed=82)
        method, flaky = flaky_exact3(db)
        ref = db.brute_force_top_k(20, 60, 4)
        for fail_at in (1, 2, 5, 9):
            flaky.arm(fail_at)
            with pytest.raises(BlockDeviceError):
                method.query(TopKQuery(20, 60, 4))
        assert method.query(TopKQuery(20, 60, 4)).object_ids == ref.object_ids

    def test_exact1_scan_failure(self):
        db = make_random_database(num_objects=40, avg_segments=80, seed=83)
        method = Exact1()
        flaky = FlakyDevice(name="flaky1")
        from repro.btree import BPlusTree

        method.device = flaky
        method.tree = BPlusTree(flaky, value_columns=5)
        method.build(db)
        ref = db.brute_force_top_k(5, 95, 4)
        flaky.arm(10)
        with pytest.raises(BlockDeviceError):
            method.query(TopKQuery(5, 95, 4))
        assert method.query(TopKQuery(5, 95, 4)).object_ids == ref.object_ids


class TestFreedBlockAccess:
    def test_stale_handle_raises(self):
        device = BlockDevice()
        block = device.allocate("payload")
        device.free(block)
        with pytest.raises(BlockDeviceError):
            device.read(block)
        with pytest.raises(BlockDeviceError):
            device.write(block, "other")


# ----------------------------------------------------------------------
# deterministic fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_stream(self):
        plan_a = FaultPlan(seed=9, crash_rate=0.05, transient_rate=0.3)
        plan_b = FaultPlan(seed=9, crash_rate=0.05, transient_rate=0.3)
        stream_a = plan_a.fork(2, 0)
        stream_b = plan_b.fork(2, 0)
        assert [stream_a.draw_call() for _ in range(64)] == [
            stream_b.draw_call() for _ in range(64)
        ]

    def test_endpoints_draw_independent_streams(self):
        plan = FaultPlan(seed=9, transient_rate=0.5)
        stream = plan.fork(1, 0)
        baseline = [stream.draw_call() for _ in range(8)]
        # Serving traffic on other endpoints must not shift endpoint
        # (1, 0)'s schedule: each fork reseeds from (seed, node,
        # replica) alone.
        other = plan.fork(1, 1)
        for _ in range(17):
            other.draw_call()
        stream = plan.fork(1, 0)
        again = [stream.draw_call() for _ in range(8)]
        assert baseline == again

    def test_scripted_fault_fires_at_exact_call(self):
        plan = FaultPlan(seed=0).schedule(TRANSIENT, node_id=3, at_call=2)
        stream = plan.fork(3, 0)
        assert stream.draw_call()[0] is None
        assert stream.draw_call()[0] == TRANSIENT
        assert stream.draw_call()[0] is None

    def test_schedule_validates(self):
        with pytest.raises(ValueError):
            FaultPlan().schedule("explode", node_id=0, at_call=1)
        with pytest.raises(ValueError):
            FaultPlan().schedule(CRASH, node_id=0, at_call=0)

    def test_quiet_plan(self):
        assert FaultPlan().is_quiet
        assert not FaultPlan(transient_rate=0.1).is_quiet
        assert not FaultPlan().schedule(CRASH, 0, 1).is_quiet


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_transient_retried_then_succeeds(self):
        attempts = []

        def flappy():
            attempts.append(1)
            if len(attempts) < 3:
                raise NodeUnavailable("flap", transient=True)
            return 42

        assert INSTANT_RETRY_POLICY.call(flappy) == 42
        assert len(attempts) == 3

    def test_permanent_raises_immediately(self):
        attempts = []

        def dead():
            attempts.append(1)
            raise NodeUnavailable("down", transient=False)

        with pytest.raises(NodeUnavailable):
            INSTANT_RETRY_POLICY.call(dead)
        assert len(attempts) == 1

    def test_exhausted_transients_become_permanent(self):
        def always():
            raise NodeUnavailable("flap", transient=True)

        with pytest.raises(NodeUnavailable) as excinfo:
            INSTANT_RETRY_POLICY.call(always)
        assert not excinfo.value.transient

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=0.01,
            multiplier=2.0,
            max_delay=0.05,
            sleep=lambda _s: None,
        )
        assert [policy.delay_for(n) for n in (2, 3, 4, 5, 6)] == [
            0.01,
            0.02,
            0.04,
            0.05,
            0.05,
        ]

    def test_per_attempt_timeout_raises_deadline(self):
        from repro.core.errors import DeadlineExceeded

        ticks = iter(range(100))
        policy = RetryPolicy(
            max_attempts=2,
            timeout=0.5,
            sleep=lambda _s: None,
            clock=lambda: float(next(ticks)),
        )
        with pytest.raises(DeadlineExceeded):
            policy.call(lambda: "too slow")


# ----------------------------------------------------------------------
# clusters under fault plans: retry, failover, degradation
# ----------------------------------------------------------------------
def _cluster_db():
    return make_random_database(
        num_objects=48, avg_segments=8, span=100.0, seed=19
    )


def _batch(db):
    return sample_workload(db, count=24, kmax=6, seed=3)


def _build(engine, partition, **kwargs):
    return engine.cluster(3, partition=partition, **kwargs)


def _serve(cluster, batch, protocol=None):
    if protocol == "threshold":
        return cluster.query_many(batch, protocol="threshold", batch_size=4)
    return cluster.query_many(batch)


CLUSTER_CASES = [
    ("object", None),
    ("time", None),
    ("time", "threshold"),
]
CLUSTER_IDS = ["object", "time-scatter", "time-threshold"]


@pytest.fixture(scope="module")
def chaos_engine():
    return TemporalRankingEngine(_cluster_db())


@pytest.fixture(scope="module")
def chaos_batch(chaos_engine):
    return _batch(chaos_engine.database)


@pytest.fixture(scope="module")
def healthy_answers(chaos_engine, chaos_batch):
    out = {}
    for partition, protocol in CLUSTER_CASES:
        cluster = _build(chaos_engine, partition)
        out[(partition, protocol)] = _serve(cluster, chaos_batch, protocol)
    return out


@pytest.mark.parametrize("partition,protocol", CLUSTER_CASES, ids=CLUSTER_IDS)
class TestClusterResilience:
    def test_transient_faults_retried_to_identical_answers(
        self, chaos_engine, chaos_batch, healthy_answers, partition, protocol
    ):
        # A retry budget deep enough to mask a 10% transient rate on
        # the call-heavy TA path too (6 consecutive faults on one call
        # has probability 1e-6; the streams are seeded, so this is a
        # fixed schedule, not a flaky bound).
        plan = FaultPlan(seed=11, transient_rate=0.1)
        cluster = _build(
            chaos_engine,
            partition,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=6, sleep=lambda _s: None),
        )
        got = _serve(cluster, chaos_batch, protocol)
        assert got == healthy_answers[(partition, protocol)]
        assert not any(result.degraded for result in got)
        assert cluster.comm.degraded_queries == 0

    def test_replica_failover_is_bit_identical(
        self, chaos_engine, chaos_batch, healthy_answers, partition, protocol
    ):
        # Kill node 1's primary endpoint on its very first call —
        # mid-batch, before it has served anything.  The surviving
        # replica holds the same shard, so answers cannot change.
        plan = FaultPlan(seed=0).schedule(CRASH, node_id=1, at_call=1)
        cluster = _build(
            chaos_engine,
            partition,
            replicas=2,
            fault_plan=plan,
            retry_policy=INSTANT_RETRY_POLICY,
        )
        got = _serve(cluster, chaos_batch, protocol)
        assert got == healthy_answers[(partition, protocol)]
        assert not any(result.degraded for result in got)
        assert cluster.groups[1].failovers >= 1
        assert sum(group.failovers for group in cluster.groups) >= 1

    def test_lost_shard_degrades_flagged_never_silent(
        self, chaos_engine, chaos_batch, healthy_answers, partition, protocol
    ):
        plan = (
            FaultPlan(seed=0)
            .schedule(CRASH, node_id=1, at_call=1, replica=0)
            .schedule(CRASH, node_id=1, at_call=1, replica=1)
        )
        cluster = _build(
            chaos_engine,
            partition,
            replicas=2,
            fault_plan=plan,
            retry_policy=INSTANT_RETRY_POLICY,
        )
        got = _serve(cluster, chaos_batch, protocol)
        reference = healthy_answers[(partition, protocol)]
        degraded = [result for result in got if result.degraded]
        assert degraded, "losing a whole shard must flag degradation"
        assert all(0.0 <= r.coverage < 1.0 for r in degraded)
        # The invariant: any answer differing from healthy is flagged.
        assert all(
            result.degraded
            for result, want in zip(got, reference)
            if result != want
        )
        assert cluster.comm.degraded_queries == len(degraded)
        assert len(cluster.comm.coverages) == len(degraded)

    def test_chaos_is_deterministic_given_seed(
        self, chaos_engine, chaos_batch, partition, protocol
    ):
        def run():
            plan = FaultPlan(seed=5, crash_rate=0.01, transient_rate=0.2)
            cluster = _build(
                chaos_engine,
                partition,
                replicas=2,
                fault_plan=plan,
                retry_policy=INSTANT_RETRY_POLICY,
            )
            results = _serve(cluster, chaos_batch, protocol)
            return results, [r.coverage for r in results]

        first, first_cov = run()
        second, second_cov = run()
        assert first == second
        assert first_cov == second_cov

    def test_allow_partial_false_raises_structured(
        self, chaos_engine, chaos_batch, partition, protocol
    ):
        plan = (
            FaultPlan(seed=0)
            .schedule(CRASH, node_id=1, at_call=1, replica=0)
            .schedule(CRASH, node_id=1, at_call=1, replica=1)
        )
        cluster = _build(
            chaos_engine,
            partition,
            replicas=2,
            fault_plan=plan,
            retry_policy=INSTANT_RETRY_POLICY,
            allow_partial=False,
        )
        with pytest.raises(PartialResultError) as excinfo:
            _serve(cluster, chaos_batch, protocol)
        assert 0.0 <= excinfo.value.coverage < 1.0
        assert excinfo.value.result is not None


# ----------------------------------------------------------------------
# storage quarantine + rebuild-from-source
# ----------------------------------------------------------------------
def _corrupt(path):
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestQuarantine:
    def test_corrupt_index_segment_quarantined_and_rebuilt(self, tmp_path):
        from repro.storage.catalog import Catalog
        from repro.storage.snapshot import open_engine

        db = make_random_database(
            num_objects=30, avg_segments=6, span=100.0, seed=23
        )
        engine = TemporalRankingEngine(db)
        engine.snapshot(tmp_path)
        reference = [
            open_engine(tmp_path).top_k(5.0, 80.0, k) for k in (1, 4, 9)
        ]
        _corrupt(tmp_path / "exact3.idx")
        recovered = open_engine(tmp_path)
        assert [
            recovered.top_k(5.0, 80.0, k) for k in (1, 4, 9)
        ] == reference
        with Catalog.open(tmp_path / Catalog.FILENAME) as catalog:
            assert catalog.is_quarantined("exact3.idx")
            catalog.clear_quarantine("exact3.idx")
            assert not catalog.is_quarantined("exact3.idx")

    def test_corrupt_shard_index_rebuilds_cluster(self, tmp_path):
        from repro.storage.catalog import Catalog
        from repro.storage.snapshot import open_cluster, snapshot_cluster

        db = make_random_database(
            num_objects=30, avg_segments=6, span=100.0, seed=23
        )
        engine = TemporalRankingEngine(db)
        batch = sample_workload(db, count=12, kmax=5, seed=1)
        cluster = engine.cluster(3, partition="object")
        snapshot_cluster(cluster, tmp_path)
        reference = open_cluster(tmp_path).query_many(batch)
        _corrupt(tmp_path / "node_1.method.idx")
        assert open_cluster(tmp_path).query_many(batch) == reference
        with Catalog.open(tmp_path / Catalog.FILENAME) as catalog:
            assert catalog.is_quarantined("node_1.method.idx")

    def test_corrupt_csr_segment_is_fatal_but_quarantined(self, tmp_path):
        from repro.storage.catalog import Catalog
        from repro.storage.snapshot import open_engine

        db = make_random_database(
            num_objects=20, avg_segments=5, span=100.0, seed=23
        )
        TemporalRankingEngine(db).snapshot(tmp_path)
        _corrupt(tmp_path / "dataset.seg")
        # The CSR segment is the source of truth: nothing to rebuild
        # from, so opening must fail loudly — but never silently serve
        # corrupt data, and the bad file is recorded for repair tools.
        with pytest.raises(PersistenceError):
            open_engine(tmp_path)
        with Catalog.open(tmp_path / Catalog.FILENAME) as catalog:
            assert catalog.is_quarantined("dataset.seg")
