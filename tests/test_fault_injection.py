"""Failure injection: IO errors must propagate cleanly, not corrupt.

The simulated device lets us script read failures at exact points and
verify that (a) errors surface as exceptions rather than wrong
answers, and (b) a structure remains fully usable after a failed
operation (nothing was mutated mid-query).
"""

import pytest

from repro.core import TopKQuery
from repro.exact import Exact1, Exact3
from repro.storage import BlockDevice, BlockDeviceError

from _support import make_random_database


class FlakyDevice(BlockDevice):
    """A device that fails the Nth read after arming."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._fail_in = None

    def arm(self, fail_in: int) -> None:
        self._fail_in = fail_in

    def read(self, block_id):
        if self._fail_in is not None:
            self._fail_in -= 1
            if self._fail_in <= 0:
                self._fail_in = None
                raise BlockDeviceError("injected read failure")
        return super().read(block_id)


def flaky_exact3(db):
    method = Exact3()
    flaky = FlakyDevice(name="flaky")
    # Swap the device before building (tree must share it).
    method.device = flaky
    from repro.intervaltree import ExternalIntervalTree

    method.tree = ExternalIntervalTree(flaky, value_columns=4)
    method.build(db)
    return method, flaky


class TestReadFailures:
    def test_error_propagates(self):
        db = make_random_database(num_objects=15, avg_segments=10, seed=81)
        method, flaky = flaky_exact3(db)
        flaky.arm(3)
        with pytest.raises(BlockDeviceError):
            method.query(TopKQuery(10, 80, 5))

    def test_usable_after_failure(self):
        db = make_random_database(num_objects=15, avg_segments=10, seed=81)
        method, flaky = flaky_exact3(db)
        ref = db.brute_force_top_k(10, 80, 5)
        flaky.arm(2)
        with pytest.raises(BlockDeviceError):
            method.query(TopKQuery(10, 80, 5))
        # The failed query must not have corrupted anything.
        got = method.query(TopKQuery(10, 80, 5))
        assert got.object_ids == ref.object_ids

    def test_repeated_failures_then_success(self):
        db = make_random_database(num_objects=40, avg_segments=40, seed=82)
        method, flaky = flaky_exact3(db)
        ref = db.brute_force_top_k(20, 60, 4)
        for fail_at in (1, 2, 5, 9):
            flaky.arm(fail_at)
            with pytest.raises(BlockDeviceError):
                method.query(TopKQuery(20, 60, 4))
        assert method.query(TopKQuery(20, 60, 4)).object_ids == ref.object_ids

    def test_exact1_scan_failure(self):
        db = make_random_database(num_objects=40, avg_segments=80, seed=83)
        method = Exact1()
        flaky = FlakyDevice(name="flaky1")
        from repro.btree import BPlusTree

        method.device = flaky
        method.tree = BPlusTree(flaky, value_columns=5)
        method.build(db)
        ref = db.brute_force_top_k(5, 95, 4)
        flaky.arm(10)
        with pytest.raises(BlockDeviceError):
            method.query(TopKQuery(5, 95, 4))
        assert method.query(TopKQuery(5, 95, 4)).object_ids == ref.object_ids


class TestFreedBlockAccess:
    def test_stale_handle_raises(self):
        device = BlockDevice()
        block = device.allocate("payload")
        device.free(block)
        with pytest.raises(BlockDeviceError):
            device.read(block)
        with pytest.raises(BlockDeviceError):
            device.write(block, "other")
