"""Unit tests for aggregation functions (sum / avg / F2)."""

import numpy as np
import pytest

from repro.core.aggregates import AVG, F2, SUM
from repro.core.plf import PiecewiseLinearFunction


@pytest.fixture()
def ramp() -> PiecewiseLinearFunction:
    """g(t) = t on [0, 4]."""
    return PiecewiseLinearFunction([0, 4], [0, 4])


class TestSum:
    def test_interval(self, ramp):
        assert SUM.interval(ramp, 0, 4) == pytest.approx(8)
        assert SUM.interval(ramp, 1, 3) == pytest.approx(4)

    def test_segment_contribution_matches_interval(self, ramp):
        contribution = SUM.segment_contribution(0, 0, 4, 4, 1, 3)
        assert contribution == pytest.approx(SUM.interval(ramp, 1, 3))

    def test_finalize_is_identity(self):
        assert SUM.finalize(7.5, 0, 10) == 7.5

    def test_name(self):
        assert SUM.name == "sum"


class TestAvg:
    def test_interval_is_mean_value(self, ramp):
        # Mean of g(t)=t over [0,4] is 2.
        assert AVG.interval(ramp, 0, 4) == pytest.approx(2)

    def test_finalize_divides_by_width(self):
        assert AVG.finalize(8.0, 0, 4) == pytest.approx(2)

    def test_finalize_empty_interval(self):
        assert AVG.finalize(8.0, 4, 4) == 0.0

    def test_avg_equals_sum_over_width(self, ramp, tiny_plf):
        for fn in (ramp, tiny_plf):
            a, b = 0.5, 3.5
            assert AVG.interval(fn, a, b) == pytest.approx(
                SUM.interval(fn, a, b) / (b - a)
            )


class TestF2:
    def test_flat_segment(self):
        # g = 3 on [0, 2]: integral of 9 is 18.
        assert F2.segment_contribution(0, 3, 2, 3, 0, 2) == pytest.approx(18)

    def test_ramp_closed_form(self, ramp):
        # integral of t^2 over [0,4] = 64/3.
        assert F2.interval(ramp, 0, 4) == pytest.approx(64 / 3)

    def test_subinterval(self, ramp):
        assert F2.interval(ramp, 1, 3) == pytest.approx((27 - 1) / 3)

    def test_negative_scores_square_positive(self):
        plf = PiecewiseLinearFunction([0, 2], [-3, -3])
        assert F2.interval(plf, 0, 2) == pytest.approx(18)

    def test_matches_quadrature_random(self):
        rng = np.random.default_rng(1)
        times = np.unique(rng.uniform(0, 10, 10))
        values = rng.uniform(-4, 4, times.size)
        plf = PiecewiseLinearFunction(times, values)
        a, b = float(times[0]), float(times[-1])
        xs = np.linspace(a, b, 100001)
        expected = np.trapezoid(plf.value_many(xs) ** 2, xs)
        assert F2.interval(plf, a, b) == pytest.approx(expected, rel=1e-4)

    def test_no_overlap(self):
        assert F2.segment_contribution(0, 1, 1, 2, 5, 6) == 0.0
