"""Unit tests for the disk-based B+-tree."""

import numpy as np
import pytest

from repro.core.errors import IndexStateError
from repro.storage import BlockDevice
from repro.btree import BPlusTree, internal_fanout, leaf_capacity


def build_tree(n=1000, value_columns=2, block_bytes=256, seed=0):
    """A tree over n sorted random keys on a tiny block size (deep tree)."""
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.uniform(0, 1000, n))
    values = np.stack([keys * 2, keys * 3], axis=1)[:, :value_columns]
    device = BlockDevice(block_bytes=block_bytes)
    tree = BPlusTree(device, value_columns=value_columns)
    tree.bulk_load(keys, values)
    return tree, keys, values


class TestCapacities:
    def test_leaf_capacity(self):
        assert leaf_capacity(5, 4096) == 4096 // 48
        assert leaf_capacity(0, 4096) == 512

    def test_internal_fanout(self):
        assert internal_fanout(4096) == 256
        assert internal_fanout(32) == 3  # floor guard


class TestBulkLoad:
    def test_entry_count_and_invariants(self):
        tree, keys, _ = build_tree(500)
        assert tree.num_entries == 500
        tree.check_invariants()

    def test_items_in_order(self):
        tree, keys, values = build_tree(300)
        got_keys = [k for k, _ in tree.items()]
        assert np.allclose(got_keys, keys)

    def test_rejects_unsorted(self):
        device = BlockDevice()
        tree = BPlusTree(device, value_columns=1)
        with pytest.raises(ValueError):
            tree.bulk_load(np.asarray([3.0, 1.0]), np.zeros((2, 1)))

    def test_rejects_empty(self):
        tree = BPlusTree(BlockDevice(), value_columns=1)
        with pytest.raises(ValueError):
            tree.bulk_load(np.empty(0), np.empty((0, 1)))

    def test_single_entry(self):
        tree = BPlusTree(BlockDevice(), value_columns=1)
        tree.bulk_load(np.asarray([5.0]), np.asarray([[50.0]]))
        assert tree.successor(0.0) == (5.0, pytest.approx([50.0]))

    def test_height_grows_logarithmically(self):
        tree, _, _ = build_tree(5000, block_bytes=256)
        # leaf cap = 256//24 = 10, fanout = 16: height ~ log_16(500) + 1.
        assert 2 <= tree.height <= 5

    def test_duplicate_keys_allowed(self):
        keys = np.asarray([1.0, 2.0, 2.0, 2.0, 3.0])
        tree = BPlusTree(BlockDevice(), value_columns=1)
        tree.bulk_load(keys, np.arange(5, dtype=float).reshape(-1, 1))
        key, row = tree.successor(2.0)
        assert key == 2.0 and row[0] == 1.0  # first duplicate


class TestLookups:
    def test_successor_exact_and_between(self):
        tree, keys, values = build_tree(800)
        rng = np.random.default_rng(1)
        for _ in range(100):
            q = float(rng.uniform(-10, 1010))
            idx = np.searchsorted(keys, q, side="left")
            got = tree.successor(q)
            if idx == keys.size:
                assert got is None
            else:
                assert got[0] == pytest.approx(keys[idx])
                assert np.allclose(got[1], values[idx])

    def test_predecessor_or_equal(self):
        tree, keys, values = build_tree(800)
        rng = np.random.default_rng(2)
        for _ in range(100):
            q = float(rng.uniform(-10, 1010))
            idx = np.searchsorted(keys, q, side="right") - 1
            got = tree.predecessor_or_equal(q)
            if idx < 0:
                assert got is None
            else:
                assert got[0] == pytest.approx(keys[idx])

    def test_last_entry(self):
        tree, keys, values = build_tree(321)
        key, row = tree.last_entry()
        assert key == pytest.approx(keys[-1])
        assert np.allclose(row, values[-1])

    def test_unbuilt_raises(self):
        tree = BPlusTree(BlockDevice(), value_columns=1)
        with pytest.raises(IndexStateError):
            tree.successor(1.0)


class TestScans:
    def test_scan_from_covers_suffix(self):
        tree, keys, _ = build_tree(600)
        q = float(keys[200]) - 1e-9
        seen = np.concatenate([k for k, _ in tree.scan_from(q)])
        assert np.allclose(seen, keys[200:])

    def test_scan_range(self):
        tree, keys, _ = build_tree(600)
        lo, hi = float(keys[100]), float(keys[399])
        seen = np.concatenate(
            [k for k, _ in tree.scan_range(lo, hi) if k.size]
        )
        assert np.allclose(seen, keys[100:400])

    def test_scan_range_empty(self):
        tree, keys, _ = build_tree(50)
        pieces = list(tree.scan_range(2000.0, 3000.0))
        total = sum(k.size for k, _ in pieces)
        assert total == 0

    def test_scan_io_linear_in_blocks(self):
        tree, keys, _ = build_tree(2000, block_bytes=256)
        tree.device.stats.reset()
        list(tree.scan_from(float(keys[0])))
        # leaf cap 10 -> about 200 leaf blocks + descent.
        assert tree.device.stats.reads <= 220


class TestInserts:
    def test_insert_into_empty(self):
        tree = BPlusTree(BlockDevice(), value_columns=1)
        tree.insert(1.0, np.asarray([10.0]))
        assert tree.successor(0.0)[0] == 1.0
        tree.check_invariants()

    def test_insert_many_random(self):
        rng = np.random.default_rng(3)
        tree = BPlusTree(BlockDevice(block_bytes=256), value_columns=1)
        tree.bulk_load(np.asarray([0.0]), np.asarray([[0.0]]))
        inserted = [0.0]
        for _ in range(500):
            key = float(rng.uniform(0, 100))
            tree.insert(key, np.asarray([key]))
            inserted.append(key)
        tree.check_invariants()
        got = [k for k, _ in tree.items()]
        assert np.allclose(got, sorted(inserted))

    def test_insert_ascending_appends(self):
        tree = BPlusTree(BlockDevice(block_bytes=256), value_columns=1)
        tree.bulk_load(np.asarray([0.0]), np.asarray([[0.0]]))
        for i in range(1, 300):
            tree.insert(float(i), np.asarray([float(i)]))
        tree.check_invariants()
        assert tree.num_entries == 300
        assert tree.last_entry()[0] == 299.0

    def test_insert_io_logarithmic(self):
        tree, keys, _ = build_tree(5000, block_bytes=256)
        tree.device.stats.reset()
        tree.insert(500.0, np.asarray([1.0, 2.0]))
        # Root-to-leaf reads + leaf write (+ possible split writes).
        assert tree.device.stats.total <= 3 * tree.height + 4
