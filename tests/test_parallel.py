"""Executor subsystem tests: chunking, resolution, sessions, faults.

The build-level byte-identity of fanned-out indexes lives in
``test_build_equivalence.py``; this module covers the executor
machinery itself plus the device's coordinator-ownership guard.
"""

import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.parallel import (
    BACKEND_ENV,
    WORKERS_ENV,
    ParallelExecutor,
    chunk_ranges,
    get_executor,
    resolve_backend,
    resolve_workers,
    weighted_chunk_ranges,
    worker_state,
)
from repro.storage.cache import LRUCache
from repro.storage.device import BlockDevice, BlockDeviceError

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Backends every session-behavior test runs under (process backends
#: need fork so test-module functions resolve inside workers).
SESSION_BACKENDS = [
    pytest.param("serial", 1, id="serial"),
    pytest.param("thread", 2, id="thread2"),
    pytest.param(
        "process",
        2,
        id="process2",
        marks=pytest.mark.skipif(_HAS_FORK is False, reason="needs fork"),
    ),
    pytest.param(
        "process",
        1,
        id="process1",
        marks=pytest.mark.skipif(_HAS_FORK is False, reason="needs fork"),
    ),
]


def _echo_task(task):
    """(task, state-sum, worker pid) — enough to check order + state."""
    state = worker_state()
    return task, float(np.sum(state)), os.getpid()


def _boom_task(task):
    raise RuntimeError(f"worker failure on task {task!r}")


def _mutate_device_task(task):
    device = worker_state()
    try:
        device.allocate(np.zeros(1))
    except BlockDeviceError:
        return "guarded"
    return "allocated"


class TestChunkRanges:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 16, 1000])
    @pytest.mark.parametrize("parts", [1, 2, 3, 8, 64])
    def test_cover_contiguously_in_order(self, n, parts):
        ranges = chunk_ranges(n, parts)
        flat = [i for lo, hi in ranges for i in range(lo, hi)]
        assert flat == list(range(n))
        assert len(ranges) <= max(1, parts) or n == 0

    def test_sizes_differ_by_at_most_one(self):
        sizes = [hi - lo for lo, hi in chunk_ranges(103, 8)]
        assert max(sizes) - min(sizes) <= 1

    def test_min_size_limits_chunk_count(self):
        ranges = chunk_ranges(10, 8, min_size=4)
        assert len(ranges) == 2
        assert all(hi - lo >= 4 for lo, hi in ranges)

    def test_weighted_cover_and_balance(self):
        weights = np.arange(100, 0, -1, dtype=np.float64)
        ranges = weighted_chunk_ranges(weights, 4)
        flat = [i for lo, hi in ranges for i in range(lo, hi)]
        assert flat == list(range(100))
        loads = [float(weights[lo:hi].sum()) for lo, hi in ranges]
        target = float(weights.sum()) / 4
        assert max(loads) <= 2 * target

    def test_weighted_degenerate_weights_fall_back(self):
        assert weighted_chunk_ranges(np.zeros(6), 3) == chunk_ranges(6, 3)
        assert weighted_chunk_ranges([], 3) == []


class TestResolution:
    def test_backend_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend("thread") == "thread"
        assert resolve_backend() == "process"

    def test_backend_default_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "serial"

    def test_unknown_backend_raises(self):
        with pytest.raises(ReproError):
            resolve_backend("cluster")

    def test_workers_env_and_floor(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3
        assert resolve_workers(5) == 5
        with pytest.raises(ReproError):
            resolve_workers(0)

    def test_serial_executor_reports_one_worker(self):
        executor = ParallelExecutor("serial", 8)
        assert executor.is_serial
        assert executor.workers == 1


class TestSessions:
    @pytest.mark.parametrize("backend,workers", SESSION_BACKENDS)
    def test_map_preserves_order_and_state(self, backend, workers):
        executor = get_executor(backend, workers)
        state = np.arange(5, dtype=np.float64)
        tasks = list(range(20))
        with executor.session(state) as session:
            results = session.map(_echo_task, tasks)
        assert [task for task, _, _ in results] == tasks
        assert all(total == 10.0 for _, total, _ in results)

    @pytest.mark.parametrize("backend,workers", SESSION_BACKENDS)
    def test_worker_exception_propagates(self, backend, workers):
        executor = get_executor(backend, workers)
        with pytest.raises(RuntimeError, match="worker failure"):
            with executor.session(None) as session:
                session.map(_boom_task, [1, 2, 3])

    def test_thread_session_restores_previous_state(self):
        executor = get_executor("thread", 2)
        with executor.session("outer") as outer:
            assert worker_state() == "outer"
            outer.map(lambda task: task, [1])
        assert worker_state() is None


class TestDeviceCoordinatorGuard:
    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork")
    def test_forked_worker_cannot_mutate_device(self):
        device = BlockDevice()
        device.allocate(np.zeros(2))
        before = (device.num_blocks, device.stats.writes)
        executor = get_executor("process", 1)
        with executor.session(device) as session:
            assert session.map(_mutate_device_task, [0]) == ["guarded"]
        assert (device.num_blocks, device.stats.writes) == before

    def test_thread_workers_share_the_coordinator(self):
        # Same process: threads are part of the coordinator and may
        # commit (the builders still funnel writes through one loop).
        device = BlockDevice()
        executor = get_executor("thread", 2)
        with executor.session(device) as session:
            assert session.map(_mutate_device_task, [0]) == ["allocated"]

    def test_unpickled_device_is_owned_by_its_process(self):
        device = BlockDevice()
        device.allocate(np.ones(3))
        clone = pickle.loads(pickle.dumps(device))
        assert clone.allocate(np.ones(3)) == 1  # not guarded


class TestReadMany:
    @pytest.mark.parametrize("cache_blocks", [0, 2])
    def test_matches_read_loop_counts_and_payloads(self, cache_blocks):
        def fresh(cache_blocks):
            cache = LRUCache(cache_blocks) if cache_blocks else None
            device = BlockDevice(cache=cache)
            ids = [device.allocate(np.full(4, i)) for i in range(6)]
            device.drop_cache()
            return device, ids

        dev_loop, ids_loop = fresh(cache_blocks)
        dev_bulk, ids_bulk = fresh(cache_blocks)
        for _ in range(2):  # second pass exercises cache hits
            want = [dev_loop.read(b) for b in ids_loop]
            got = dev_bulk.read_many(ids_bulk)
            assert all(
                a.tobytes() == b.tobytes() for a, b in zip(want, got)
            )
        assert dev_loop.stats.reads == dev_bulk.stats.reads
        assert dev_loop.stats.cache_hits == dev_bulk.stats.cache_hits
