"""Correctness, IO behaviour, and update tests for EXACT1/2/3."""

import numpy as np
import pytest

from repro.core import AVG, TopKQuery
from repro.core.errors import IndexStateError
from repro.exact import Exact1, Exact2, Exact3

from _support import make_random_database, random_intervals

EXACT_CLASSES = [Exact1, Exact2, Exact3]


@pytest.fixture(scope="module", params=EXACT_CLASSES, ids=lambda c: c.name)
def built_method(request):
    db = make_random_database(num_objects=40, avg_segments=25, seed=21)
    return request.param().build(db), db


class TestExactness:
    def test_matches_brute_force(self, built_method):
        method, db = built_method
        for t1, t2 in random_intervals(db, 40, seed=5):
            ref = db.brute_force_top_k(t1, t2, 8)
            got = method.query(TopKQuery(t1, t2, 8))
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-6)

    def test_full_domain_query(self, built_method):
        method, db = built_method
        t1, t2 = db.span
        ref = db.brute_force_top_k(t1, t2, 5)
        got = method.query(TopKQuery(t1, t2, 5))
        assert got.object_ids == ref.object_ids

    def test_k_equals_m(self, built_method):
        method, db = built_method
        ref = db.brute_force_top_k(10, 90, db.num_objects)
        got = method.query(TopKQuery(10, 90, db.num_objects))
        assert got.object_ids == ref.object_ids

    def test_narrow_interval(self, built_method):
        method, db = built_method
        ref = db.brute_force_top_k(50.0, 50.001, 5)
        got = method.query(TopKQuery(50.0, 50.001, 5))
        assert got.object_ids == ref.object_ids

    def test_query_before_build_raises(self):
        for cls in EXACT_CLASSES:
            with pytest.raises(IndexStateError):
                cls().query(TopKQuery(0, 1, 1))


class TestAllMethodsAgree:
    def test_pairwise_identical(self):
        db = make_random_database(num_objects=25, avg_segments=15, seed=33)
        methods = [cls().build(db) for cls in EXACT_CLASSES]
        for t1, t2 in random_intervals(db, 25, seed=6):
            answers = [m.query(TopKQuery(t1, t2, 6)) for m in methods]
            for other in answers[1:]:
                assert other.object_ids == answers[0].object_ids
                assert np.allclose(other.scores, answers[0].scores, atol=1e-6)


class TestNonDenseIds:
    def test_sampled_database(self):
        db = make_random_database(num_objects=50, avg_segments=12, seed=11)
        sub = db.sample_objects(17, seed=3)
        assert sub.num_objects == 17
        for cls in EXACT_CLASSES:
            method = cls().build(sub)
            for t1, t2 in random_intervals(sub, 10, seed=7):
                ref = sub.brute_force_top_k(t1, t2, 5)
                got = method.query(TopKQuery(t1, t2, 5))
                assert got.object_ids == ref.object_ids


class TestAggregates:
    def test_avg_aggregate(self):
        db = make_random_database(num_objects=20, avg_segments=10, seed=44)
        for cls in EXACT_CLASSES:
            method = cls(aggregate=AVG).build(db)
            ref = db.brute_force_top_k(20, 70, 5, aggregate=AVG)
            got = method.query(TopKQuery(20, 70, 5))
            assert got.object_ids == ref.object_ids
            assert np.allclose(got.scores, ref.scores, atol=1e-9)


class TestNegativeScores:
    def test_exact_methods_unaffected(self, negative_db):
        for cls in EXACT_CLASSES:
            method = cls().build(negative_db)
            for t1, t2 in random_intervals(negative_db, 15, seed=9):
                ref = negative_db.brute_force_top_k(t1, t2, 6)
                got = method.query(TopKQuery(t1, t2, 6))
                assert got.object_ids == ref.object_ids


class TestIOBehaviour:
    def test_exact1_io_grows_with_interval(self):
        db = make_random_database(num_objects=60, avg_segments=60, seed=55)
        method = Exact1().build(db)
        short = method.measured_query(TopKQuery(40, 42, 5)).ios
        long = method.measured_query(TopKQuery(5, 95, 5)).ios
        assert long > short * 3

    def test_exact3_io_flat_in_interval(self):
        db = make_random_database(num_objects=60, avg_segments=60, seed=55)
        method = Exact3().build(db)
        short = method.measured_query(TopKQuery(40, 42, 5)).ios
        long = method.measured_query(TopKQuery(5, 95, 5)).ios
        assert long <= short * 3 + 10

    def test_exact3_beats_exact1_on_long_intervals(self):
        db = make_random_database(num_objects=80, avg_segments=80, seed=56)
        e1 = Exact1().build(db)
        e3 = Exact3().build(db)
        q = TopKQuery(5, 95, 10)
        assert e3.measured_query(q).ios < e1.measured_query(q).ios

    def test_exact2_io_scales_with_m(self):
        small = make_random_database(num_objects=20, avg_segments=10, seed=57)
        large = make_random_database(num_objects=80, avg_segments=10, seed=58)
        io_small = Exact2().build(small).measured_query(TopKQuery(10, 30, 5)).ios
        io_large = Exact2().build(large).measured_query(TopKQuery(10, 30, 5)).ios
        assert io_large >= io_small * 3

    def test_index_sizes_linear_in_n(self):
        small = make_random_database(num_objects=30, avg_segments=20, seed=59)
        large = make_random_database(num_objects=30, avg_segments=80, seed=60)
        for cls in EXACT_CLASSES:
            size_small = cls().build(small).index_size_bytes
            size_large = cls().build(large).index_size_bytes
            assert size_large <= size_small * 8  # ~4x data -> ~4x size


class TestUpdates:
    def test_append_keeps_methods_exact(self):
        db = make_random_database(num_objects=15, avg_segments=10, seed=61)
        methods = [cls().build(db) for cls in EXACT_CLASSES]
        rng = np.random.default_rng(0)
        end = db.t_max
        for step in range(10):
            obj_id = int(rng.integers(0, 15))
            end = end + float(rng.uniform(0.5, 2.0))
            value = float(rng.uniform(0, 10))
            db.append_segment(obj_id, end, value)
            for m in methods:
                m.append(obj_id, end, value)
        for t1, t2 in [(90.0, end), (0.0, end), (95.0, 99.0)]:
            ref = db.brute_force_top_k(t1, t2, 6)
            for m in methods:
                got = m.query(TopKQuery(t1, t2, 6))
                assert got.object_ids == ref.object_ids, m.name
                assert np.allclose(got.scores, ref.scores, atol=1e-6)

    def test_append_io_is_logarithmic(self):
        db = make_random_database(num_objects=30, avg_segments=40, seed=62)
        m = Exact1().build(db)
        db.append_segment(0, db.t_max + 1.0, 5.0)
        m.io_stats.reset()
        m.append(0, db.t_max, 5.0)
        assert m.io_stats.total <= 4 * m.tree.height + 6
