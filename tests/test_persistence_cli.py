"""Tests for index persistence and the command-line interface."""

import pytest

from repro.cli import main
from repro.core import TopKQuery
from repro.exact import Exact3
from repro.approximate import Appx2
from repro.storage.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_index,
    save_index,
)

from _support import make_random_database


class TestPersistence:
    def test_round_trip_exact3(self, tmp_path):
        db = make_random_database(num_objects=15, avg_segments=10, seed=70)
        method = Exact3().build(db)
        path = tmp_path / "exact3.idx"
        written = save_index(method, path)
        assert written > 0
        loaded = load_index(path)
        q = TopKQuery(10, 80, 5)
        assert loaded.query(q).object_ids == method.query(q).object_ids

    def test_round_trip_appx2(self, tmp_path):
        db = make_random_database(num_objects=15, avg_segments=10, seed=71)
        method = Appx2(epsilon=0.01, kmax=10).build(db)
        path = tmp_path / "appx2.idx"
        save_index(method, path)
        loaded = load_index(path)
        q = TopKQuery(10, 80, 5)
        assert loaded.query(q).object_ids == method.query(q).object_ids
        assert loaded.breakpoints.r == method.breakpoints.r

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.idx"
        path.write_bytes(b"not an index at all")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "old.idx"
        payload = b"REPRO-IDX" + (FORMAT_VERSION + 1).to_bytes(2, "big") + b"x"
        path.write_bytes(payload)
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_database_round_trip(self, tmp_path):
        db = make_random_database(num_objects=8, avg_segments=6, seed=72)
        path = tmp_path / "db.bin"
        save_index(db, path)
        loaded = load_index(path)
        assert loaded.num_objects == db.num_objects
        assert loaded.total_mass == pytest.approx(db.total_mass)


class TestDeprecationShims:
    def test_save_load_shims_warn_and_round_trip(self, tmp_path):
        db = make_random_database(num_objects=10, avg_segments=8, seed=73)
        method = Exact3().build(db)
        path = tmp_path / "shim.idx"
        with pytest.warns(DeprecationWarning, match="save_index is deprecated"):
            written = save_index(method, path)
        assert written > 0
        with pytest.warns(DeprecationWarning, match="load_index is deprecated"):
            loaded = load_index(path)
        q = TopKQuery(10, 80, 5)
        assert loaded.query(q).object_ids == method.query(q).object_ids

    def test_canonical_payload_functions_do_not_warn(
        self, tmp_path, recwarn
    ):
        from repro.storage.persistence import read_payload, write_payload

        db = make_random_database(num_objects=6, avg_segments=5, seed=74)
        path = tmp_path / "payload.bin"
        write_payload(path, db)
        loaded = read_payload(path)
        assert loaded.num_objects == db.num_objects
        deprecations = [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
        assert deprecations == []

    def test_shims_share_the_canonical_container(self, tmp_path):
        # A file written by the shim opens through the new name (and
        # vice versa): the shims are aliases, not a parallel format.
        from repro.storage.persistence import read_payload, write_payload

        db = make_random_database(num_objects=6, avg_segments=5, seed=75)
        path = tmp_path / "either.bin"
        with pytest.warns(DeprecationWarning):
            save_index(db, path)
        assert read_payload(path).num_objects == db.num_objects
        write_payload(path, db)
        with pytest.warns(DeprecationWarning):
            assert load_index(path).num_objects == db.num_objects


class TestCli:
    def test_generate_info(self, tmp_path, capsys):
        out = tmp_path / "t.db"
        assert main([
            "generate", "temp", "--objects", "20", "--readings", "15",
            "-o", str(out),
        ]) == 0
        assert out.exists()
        assert main(["info", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "m=20" in captured

    def test_build_and_query(self, tmp_path, capsys):
        db_path = tmp_path / "t.db"
        idx_path = tmp_path / "t.idx"
        main(["generate", "temp", "--objects", "20", "--readings", "15",
              "-o", str(db_path)])
        assert main([
            "build", str(db_path), "--method", "exact3", "-o", str(idx_path),
        ]) == 0
        assert main([
            "query", str(idx_path), "--t1", "100", "--t2", "500000", "-k", "3",
        ]) == 0
        captured = capsys.readouterr().out
        assert "top-3" in captured
        assert "IOs" in captured

    def test_build_approximate(self, tmp_path, capsys):
        db_path = tmp_path / "t.db"
        idx_path = tmp_path / "a.idx"
        main(["generate", "temp", "--objects", "15", "--readings", "12",
              "-o", str(db_path)])
        assert main([
            "build", str(db_path), "--method", "appx2",
            "--epsilon", "0.01", "--kmax", "10", "-o", str(idx_path),
        ]) == 0
        assert main(["info", str(idx_path)]) == 0
        assert "breakpoints" in capsys.readouterr().out

    def test_compare(self, tmp_path, capsys):
        db_path = tmp_path / "t.db"
        main(["generate", "temp", "--objects", "15", "--readings", "12",
              "-o", str(db_path)])
        assert main([
            "compare", str(db_path), "-k", "3", "--queries", "2",
            "--epsilon", "0.01", "--kmax", "10",
        ]) == 0
        out = capsys.readouterr().out
        for name in ("EXACT1", "EXACT2", "EXACT3", "APPX1", "APPX2", "APPX2+"):
            assert name in out

    def test_unknown_method(self, tmp_path):
        db_path = tmp_path / "t.db"
        main(["generate", "temp", "--objects", "10", "--readings", "10",
              "-o", str(db_path)])
        with pytest.raises(SystemExit):
            main(["build", str(db_path), "--method", "nope", "-o",
                  str(tmp_path / "x.idx")])

    def test_snapshot_mount_verify(self, tmp_path, capsys):
        db_path = tmp_path / "t.db"
        snap = tmp_path / "snap"
        main(["generate", "temp", "--objects", "20", "--readings", "12",
              "-o", str(db_path)])
        assert main([
            "snapshot", str(db_path), "-o", str(snap), "--instant",
        ]) == 0
        assert (snap / "catalog.sqlite").exists()
        assert (snap / "dataset.seg").exists()
        assert (snap / "exact3.idx").exists()
        assert main(["mount", str(snap)]) == 0
        assert main([
            "mount", str(snap), "--verify", "--count", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "answers identical" in out
        assert "IO charges identical" in out

    def test_serve_from_catalog(self, tmp_path, capsys):
        db_path = tmp_path / "t.db"
        snap = tmp_path / "snap"
        main(["generate", "temp", "--objects", "15", "--readings", "10",
              "-o", str(db_path)])
        main(["snapshot", str(db_path), "-o", str(snap)])
        assert main([
            "serve", "--catalog", str(snap), "--demo", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 4 requests" in out

    def test_serve_needs_database_or_catalog(self):
        with pytest.raises(SystemExit, match="database file or --catalog"):
            main(["serve", "--demo", "1"])

    def test_mount_nonexistent_dir_fails_cleanly(self, tmp_path):
        from repro.storage.persistence import PersistenceError

        with pytest.raises(PersistenceError, match="no catalog"):
            main(["mount", str(tmp_path / "nothing")])


class TestAsciiPlot:
    def test_chart_renders(self):
        from repro.bench.ascii_plot import ascii_chart

        chart = ascii_chart(
            "demo",
            [1, 2, 3],
            {"EXACT3": [100, 200, 400], "APPX1": [3, 3, 3]},
        )
        assert "demo" in chart
        assert "o=EXACT3" in chart
        assert "x=APPX1" in chart

    def test_chart_empty(self):
        from repro.bench.ascii_plot import ascii_chart

        assert "(no data)" in ascii_chart("x", [], {})

    def test_linear_scale(self):
        from repro.bench.ascii_plot import ascii_chart

        chart = ascii_chart("lin", [0, 1], {"s": [0.5, 1.0]}, log_y=False)
        assert "lin" in chart
