"""Tests for the :class:`TemporalRankingEngine` facade.

The engine bundles EXACT3 (eager), APPX2+ (lazy), the instant engine
(lazy), and the quantile ranker behind one handle; these tests pin the
lazy-build contract, `kmax` validation, append routing, and the
batched `top_k_many` / `instant_top_k_many` entry points.
"""

import numpy as np
import pytest

from repro.core.errors import InvalidQueryError
from repro.datasets import sample_instant_workload, sample_workload
from repro.engine import TemporalRankingEngine

from _support import make_random_database


@pytest.fixture()
def db():
    return make_random_database(num_objects=30, avg_segments=14, seed=31)


@pytest.fixture()
def engine(db):
    return TemporalRankingEngine(db, kmax=12)


def test_lazy_builds(engine):
    assert engine._approximate is None
    assert engine._instant is None
    assert "exact3" in repr(engine)
    engine.top_k(10.0, 60.0, 5)
    assert engine._approximate is None  # exact queries never build APPX
    engine.top_k(10.0, 60.0, 5, approximate=True)
    assert engine._approximate is not None
    engine.instant_top_k(42.0, 3)
    assert engine._instant is not None
    assert "appx2+" in repr(engine) and "instant" in repr(engine)


def test_exact_matches_brute_force(engine, db):
    result = engine.top_k(15.0, 70.0, 4)
    brute = db.brute_force_top_k(15.0, 70.0, 4)
    assert result.object_ids == brute.object_ids
    np.testing.assert_allclose(result.scores, brute.scores, rtol=1e-12)


def test_kmax_validation(engine):
    with pytest.raises(InvalidQueryError):
        engine.top_k(0.0, 50.0, 13, approximate=True)
    with pytest.raises(InvalidQueryError):
        engine.top_k_many(
            np.asarray([[0.0, 50.0, 13.0]]), approximate=True
        )
    # Exact queries have no kmax cap.
    assert len(engine.top_k(0.0, 50.0, 13)) > 0


def test_top_k_many_matches_scalar(engine, db):
    batch = sample_workload(db, count=40, kmax=12, seed=2)
    for approximate in (False, True):
        scalar = [
            engine.top_k(q.t1, q.t2, q.k, approximate=approximate)
            for q in batch.as_queries()
        ]
        batched = engine.top_k_many(batch, approximate=approximate)
        assert all(a == b for a, b in zip(scalar, batched))


def test_instant_top_k_many_matches_scalar(engine, db):
    ts, ks = sample_instant_workload(db, count=30, kmax=12, seed=4)
    scalar = [engine.instant_top_k(float(t), int(k)) for t, k in zip(ts, ks)]
    batched = engine.instant_top_k_many(ts, ks)
    assert all(a == b for a, b in zip(scalar, batched))


def test_append_routes_to_live_indexes(engine, db):
    engine.top_k(10.0, 60.0, 3, approximate=True)
    engine.instant_top_k(42.0, 3)
    assert engine._instant is not None
    t_max = db.span[1]
    engine.append(2, t_max + 4.0, 3.0)
    # The static instant engine is dropped for a lazy rebuild; the
    # exact and approximate indexes are maintained in place.
    assert engine._instant is None
    assert engine._approximate is not None
    # Answers after the append still match brute force on the new data.
    result = engine.top_k(t_max - 10.0, t_max + 4.0, 5)
    brute = db.brute_force_top_k(t_max - 10.0, t_max + 4.0, 5)
    assert result == brute
    # Instant queries rebuild lazily and see the appended segment.
    assert engine.instant_top_k(t_max + 3.0, 3) is not None
    assert engine._instant is not None


def test_quantile_path(engine, db):
    result = engine.quantile_top_k(10.0, 80.0, 3, phi=0.5)
    assert len(result) == 3


def test_index_size_accumulates(engine):
    exact_only = engine.index_size_bytes
    engine.top_k(10.0, 60.0, 3, approximate=True)
    with_appx = engine.index_size_bytes
    assert with_appx > exact_only
    engine.instant_top_k(42.0, 3)
    assert engine.index_size_bytes > with_appx
