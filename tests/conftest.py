"""Pytest fixtures for the test suite (helpers live in _support)."""

import pytest

from _support import make_random_database
from repro.core import PiecewiseLinearFunction, TemporalDatabase


@pytest.fixture(scope="session")
def small_db() -> TemporalDatabase:
    """30 objects, ~20 segments each, domain [0, 100]."""
    return make_random_database(seed=42)


@pytest.fixture(scope="session")
def medium_db() -> TemporalDatabase:
    """120 objects, ~40 segments each — enough for multi-block indexes."""
    return make_random_database(num_objects=120, avg_segments=40, seed=7)


@pytest.fixture(scope="session")
def negative_db() -> TemporalDatabase:
    """Database with negative score values (Section 4 extension)."""
    return make_random_database(seed=13, negative=True)


@pytest.fixture()
def tiny_plf() -> PiecewiseLinearFunction:
    """A hand-checkable PLF: triangle then plateau.

    Knots: (0,0), (2,4), (4,0), (6,0), (8,2).
    Segment areas: 4, 4, 0, 2 -> prefix [0, 4, 8, 8, 10].
    """
    return PiecewiseLinearFunction([0, 2, 4, 6, 8], [0, 4, 0, 0, 2])
