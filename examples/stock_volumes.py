"""Streaming stock volumes: aggregate top-k under appends (Section 4).

The paper's other motivating query: "find the top-20 stocks having the
largest total transaction volumes from 02/05/2011 to 02/07/2011."
This example simulates a live feed: volume curves receive appended
segments at the current time frontier, the indexes are maintained
incrementally, and queries keep reflecting the newest data.

Run:  python examples/stock_volumes.py
"""

from __future__ import annotations

import numpy as np

from repro import Exact2, Exact3, TopKQuery
from repro.core import PiecewiseLinearFunction, TemporalDatabase, TemporalObject


def make_market(num_stocks: int, horizon: float, seed: int) -> TemporalDatabase:
    """Initial volume curves: lognormal level per stock, hourly ticks."""
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(num_stocks):
        times = np.linspace(0.0, horizon, 50)
        level = rng.lognormal(3.0, 0.8)
        values = level * (1.0 + 0.3 * rng.standard_normal(times.size)).clip(0.05)
        objects.append(
            TemporalObject(i, PiecewiseLinearFunction(times, values), f"STK{i:03d}")
        )
    return TemporalDatabase(objects, span=(0.0, horizon), pad=True)


def main() -> None:
    horizon = 100.0
    db = make_market(num_stocks=200, horizon=horizon, seed=4)
    exact3 = Exact3().build(db)
    exact2 = Exact2().build(db)
    print(f"market: {db}\n")

    rng = np.random.default_rng(9)
    now = horizon
    print("streaming 300 ticks (2 per stock per round)...")
    total_update_ios = 0
    for round_no in range(30):
        now += 1.0
        # Each stock ticks at most once per round (appends must strictly
        # extend an object's span).
        for stock in rng.choice(200, 10, replace=False):
            value = float(db.get(int(stock)).function.values[-1])
            tick = max(0.05, value * float(rng.lognormal(0.0, 0.2)))
            db.append_segment(int(stock), now, tick)
            before = exact3.io_stats.total + exact2.io_stats.total
            exact3.append(int(stock), now, tick)
            exact2.append(int(stock), now, tick)
            total_update_ios += (
                exact3.io_stats.total + exact2.io_stats.total - before
            )
    print(f"  avg update cost: {total_update_ios / 300:.1f} IOs per tick\n")

    # "Largest total volume over the last 10 time units."
    query = TopKQuery(now - 10.0, now, 10)
    answer = exact3.query(query)
    check = exact2.query(query)
    assert answer.object_ids == check.object_ids, "indexes diverged!"
    print(f"top-10 by total volume over [{query.t1:.0f}, {query.t2:.0f}]:")
    for rank, item in enumerate(answer, start=1):
        print(f"  {rank:2d}. {db.get(item.object_id).label}  "
              f"volume={item.score:10.1f}")


if __name__ == "__main__":
    main()
