"""Three ranking semantics side by side: instant, aggregate, median.

The paper's introduction argues the *instant* top-k query (its
predecessor) is outlier-sensitive and hard to aim, and proposes the
*aggregate* top-k instead; its conclusion leaves *holistic* aggregates
(median/quantile) open.  This library implements all three — this
example shows a concrete dataset where each semantics elects a
different winner, which is exactly why the choice matters.

Run:  python examples/ranking_semantics.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Exact3,
    InstantIntervalTree,
    QuantileRanker,
    TopKQuery,
)
from repro.core import PiecewiseLinearFunction, TemporalDatabase, TemporalObject


def main() -> None:
    # Three archetypes over [0, 100]:
    #   "burst"  — near zero except one enormous spike,
    #   "steady" — constant medium score,
    #   "rising" — low start, high finish.
    objects = [
        TemporalObject(
            0,
            PiecewiseLinearFunction(
                [0, 49, 50, 51, 100], [0.5, 0.5, 200, 0.5, 0.5]
            ),
            "burst",
        ),
        TemporalObject(1, PiecewiseLinearFunction([0, 100], [4, 4]), "steady"),
        TemporalObject(2, PiecewiseLinearFunction([0, 100], [0.2, 7]), "rising"),
    ]
    rng = np.random.default_rng(5)
    for i in range(3, 23):
        times = np.unique(rng.uniform(0, 100, 10))
        values = rng.uniform(0, 2, times.size)
        objects.append(
            TemporalObject(i, PiecewiseLinearFunction(times, values), f"noise-{i}")
        )
    db = TemporalDatabase(objects, span=(0.0, 100.0), pad=True)

    instant = InstantIntervalTree().build(db)
    aggregate = Exact3().build(db)
    median = QuantileRanker(db, phi=0.5)

    def names(result):
        return [db.get(i).label for i in result.object_ids]

    print("query interval [0, 100], k = 3\n")
    print(f"instant top-3 at t=50   : {names(instant.query(50.0, 3))}")
    print("  (the burst wins the instant ranking at its spike...)")
    print(f"instant top-3 at t=90   : {names(instant.query(90.0, 3))}")
    print("  (...but pick a different t and the answer flips — the")
    print("   paper's argument against instant ranking)\n")
    print(f"aggregate (sum) top-3   : {names(aggregate.query(TopKQuery(0, 100, 3)))}")
    print("  (total area: steady accumulation beats the brief spike)\n")
    print(f"median (holistic) top-3 : {names(median.query(0, 100, 3))}")
    print("  (robust to the spike entirely: burst ranks by its baseline)")


if __name__ == "__main__":
    main()
