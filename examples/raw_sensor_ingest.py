"""Raw sensor ingestion: samples -> segmentation -> index -> query.

The paper assumes data "has already been converted to a piecewise
linear representation by any segmentation method" (Section 1).  This
example shows the full ingestion path the library supports: noisy raw
readings are compacted with three segmentation algorithms, the
compactions are compared, and the chosen representation is indexed
and queried — including with the avg and F2 aggregates of Section 4.

Run:  python examples/raw_sensor_ingest.py
"""

from __future__ import annotations

import numpy as np

from repro import AVG, F2, Exact1, Exact3, TopKQuery
from repro.core import (
    PiecewiseLinearFunction,
    TemporalDatabase,
    TemporalObject,
    from_samples,
)
from repro.segmentation import bottom_up, sliding_window, swab


def raw_feed(sensor: int, rng: np.random.Generator) -> PiecewiseLinearFunction:
    """A noisy 2000-sample feed with a sensor-specific regime."""
    t = np.sort(rng.uniform(0, 500, 2000))
    t = np.unique(t)
    base = 10 + 3 * np.sin(t / 20 + sensor) + sensor * 0.1
    noise = 0.15 * rng.standard_normal(t.size)
    return from_samples(t, base + noise)


def main() -> None:
    rng = np.random.default_rng(12)
    feeds = [raw_feed(i, rng) for i in range(30)]
    tolerance = 0.3

    print("segmentation comparison on sensor 0 (2000 samples):")
    for algorithm in (sliding_window, bottom_up, swab):
        plf = algorithm(feeds[0].times, feeds[0].values, tolerance)
        print(f"  {algorithm.__name__:<15s} -> {plf.num_segments:4d} segments")

    objects = [
        TemporalObject(i, bottom_up(f.times, f.values, tolerance), f"sensor-{i}")
        for i, f in enumerate(feeds)
    ]
    db = TemporalDatabase(objects, span=(0.0, 500.0), pad=True)
    raw_n = sum(f.num_segments for f in feeds)
    print(f"\ncompacted N: {db.total_segments} segments "
          f"(raw: {raw_n}, {raw_n / db.total_segments:.0f}x reduction)")

    query = TopKQuery(100.0, 300.0, 5)
    for aggregate, name in ((None, "sum"), (AVG, "avg"), (F2, "F2")):
        method = (
            Exact3().build(db)
            if aggregate is None
            else Exact1(aggregate=aggregate).build(db)
        )
        answer = method.query(query)
        labels = [db.get(i).label for i in answer.object_ids]
        print(f"top-5 by {name:<3s} over [100, 300]: {labels}")


if __name__ == "__main__":
    main()
