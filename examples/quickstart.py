"""Quickstart: build a temporal database, index it, run aggregate top-k.

Demonstrates the core loop of the library in ~40 lines:

1. generate a MesoWest-style temperature database,
2. build the best exact index (EXACT3) and a compact approximate
   index (APPX2),
3. ask "which k stations had the highest average temperature over a
   week-long window?" and compare the two answers.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Appx2, Exact3, TopKQuery, generate_temp


def main() -> None:
    # A scaled-down Temp dataset: 300 stations, ~80 readings each.
    db = generate_temp(num_objects=300, avg_readings=80, seed=7)
    print(f"database: {db}")

    exact = Exact3().build(db)
    approx = Appx2(epsilon=1e-4, kmax=50).build(db)
    print(
        f"EXACT3 index: {exact.index_size_bytes / 1e6:.2f} MB, "
        f"built in {exact.build_seconds:.2f}s"
    )
    print(
        f"APPX2  index: {approx.index_size_bytes / 1e3:.1f} KB "
        f"({approx.breakpoints.r} breakpoints), "
        f"built in {approx.build_seconds:.2f}s"
    )

    # Top-10 stations over a ~"one week" window (the domain is one
    # synthetic year).
    span = db.t_max - db.t_min
    week = span / 52
    query = TopKQuery(t1=span * 0.4, t2=span * 0.4 + week, k=10)

    exact_cost = exact.measured_query(query)
    approx_cost = approx.measured_query(query)

    print(f"\ntop-10(t1={query.t1:.0f}, t2={query.t2:.0f}, sum):")
    print(f"  EXACT3: {exact_cost.result.object_ids}  ({exact_cost.ios} IOs)")
    print(f"  APPX2 : {approx_cost.result.object_ids}  ({approx_cost.ios} IOs)")

    overlap = len(
        set(exact_cost.result.object_ids) & set(approx_cost.result.object_ids)
    )
    print(f"  agreement: {overlap}/10, "
          f"IO saving: {exact_cost.ios / max(approx_cost.ios, 1):.0f}x")


if __name__ == "__main__":
    main()
