"""Weather-station analytics: the paper's motivating Temp scenario.

"Return the top-10 weather stations having the highest average
temperature from 10/01/2010 to 10/07/2010" (paper Section 1) — plus a
look at how the answer degrades as the approximation budget shrinks,
which is the trade-off a deployment actually has to pick.

Run:  python examples/weather_stations.py
"""

from __future__ import annotations

from repro import AVG, Appx1, Exact3, TopKQuery, generate_temp
from repro.bench import precision_recall
from repro.datasets import random_queries


def main() -> None:
    db = generate_temp(num_objects=400, avg_readings=100, seed=42)
    span = db.t_max - db.t_min
    print(f"database: {db}\n")

    # --- the motivating query: hottest stations over one week, by avg.
    exact_avg = Exact3(aggregate=AVG).build(db)
    week = span / 52
    query = TopKQuery(t1=span * 0.75, t2=span * 0.75 + week, k=10)
    answer = exact_avg.query(query)
    print("top-10 stations by AVG temperature over one week:")
    for rank, item in enumerate(answer, start=1):
        label = db.get(item.object_id).label
        print(f"  {rank:2d}. {label:<14s} avg={item.score:8.2f}")

    # --- accuracy vs budget: how small can the approximate index go?
    print("\napproximate budget sweep (top-10 by SUM, 20 random queries):")
    exact_sum = Exact3().build(db)
    queries = random_queries(db, count=20, interval_fraction=0.1, k=10, seed=3)
    references = [exact_sum.query(q) for q in queries]
    print(f"  {'epsilon':>10s} {'breakpoints':>12s} {'index':>10s} "
          f"{'precision':>10s}")
    for epsilon in (3e-4, 1e-4, 3e-5):
        approx = Appx1(epsilon=epsilon, kmax=20).build(db)
        precision = sum(
            precision_recall(approx.query(q), ref)
            for q, ref in zip(queries, references)
        ) / len(queries)
        print(
            f"  {epsilon:10.0e} {approx.breakpoints.r:12d} "
            f"{approx.index_size_bytes / 1e3:8.0f}KB {precision:10.2%}"
        )


if __name__ == "__main__":
    main()
