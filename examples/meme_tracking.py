"""Meme-tracker analytics: bursty web data, tiny approximate indexes.

The paper's second scenario: ~1.5M URLs, each with a short burst of
meme observations; find the URLs with the most meme coverage in a
date range.  The point this example makes is the paper's headline
result on Meme: APPX2 compresses a multi-MB exact index into a few
dozen KB while keeping the ranking usable, and APPX2+ repairs the
scores exactly.

Run:  python examples/meme_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro import Appx2, Appx2Plus, Exact3, epsilon_for_budget, generate_meme
from repro.bench import approximation_ratio, precision_recall
from repro.datasets import random_queries


def main() -> None:
    db = generate_meme(num_objects=2000, avg_records=12, seed=11)
    print(f"database: {db} (bursty: median object covers <1% of the domain)\n")

    exact = Exact3().build(db)
    # Pick the epsilon that spends a budget of ~200 breakpoints.
    epsilon = epsilon_for_budget(db, 200, tolerance=20)
    appx2 = Appx2(epsilon=epsilon, kmax=40).build(db)
    appx2p = Appx2Plus(breakpoints=appx2.breakpoints, kmax=40).build(db)

    print(f"{'index':<8s} {'size':>12s} {'build':>8s}")
    for method in (exact, appx2, appx2p):
        print(
            f"{method.name:<8s} {method.index_size_bytes / 1e6:10.3f}MB "
            f"{method.build_seconds:7.2f}s"
        )
    compression = exact.index_size_bytes / appx2.index_size_bytes
    print(f"\nAPPX2 compression vs EXACT3: {compression:.1f}x "
          f"({appx2.breakpoints.r} breakpoints)\n")

    queries = random_queries(db, count=15, interval_fraction=0.2, k=20, seed=5)
    rows = []
    for method in (appx2, appx2p):
        precisions, ratios, ios = [], [], []
        for q in queries:
            ref = exact.query(q)
            cost = method.measured_query(q)
            precisions.append(precision_recall(cost.result, ref))
            ratios.append(approximation_ratio(cost.result, db, q.t1, q.t2))
            ios.append(cost.ios)
        rows.append((method.name, np.mean(precisions), np.mean(ratios), np.mean(ios)))

    exact_ios = np.mean([exact.measured_query(q).ios for q in queries])
    print("top-20 over 20%-of-domain windows, 15 random queries:")
    print(f"{'method':<8s} {'precision':>10s} {'ratio':>8s} {'IOs':>8s}")
    print(f"{'EXACT3':<8s} {'1.00':>10s} {'1.000':>8s} {exact_ios:8.0f}")
    for name, precision, ratio, io in rows:
        print(f"{name:<8s} {precision:10.2f} {ratio:8.3f} {io:8.0f}")


if __name__ == "__main__":
    main()
