"""Live dashboard: continuous top-k over a sliding window.

Builds on the Section 4 update machinery: readings stream in, the
monitor keeps the trailing-window aggregate top-k current and emits
entered/left events — the kind of "top stations in the last 24h"
widget the paper's weather scenario implies.

Run:  python examples/live_dashboard.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_temp
from repro.streaming import SlidingWindowMonitor


def main() -> None:
    db = generate_temp(num_objects=120, avg_readings=40, seed=23)
    span = db.t_max - db.t_min
    window = span * 0.05
    monitor = SlidingWindowMonitor(db, window=window, k=5)
    print(f"database: {db}")
    print(f"window: trailing {window:.0f} time units, k = 5\n")

    rng = np.random.default_rng(3)
    now = db.t_max
    step = span / 400
    changes = 0
    for round_no in range(60):
        now += step
        # A heat wave: stations 0-9 report every round, far above the
        # climate norm; others tick at their usual levels.
        if round_no % 2 == 0:
            station = int(rng.integers(0, 10))
            reading = float(rng.uniform(380, 420))
        else:
            station = int(rng.integers(10, 120))
            reading = float(rng.uniform(280, 310))
        change = monitor.tick(station, now, reading)
        if change.changed and round_no > 0:
            changes += 1
            if change.entered:
                print(f"t={change.time:12.0f}  entered top-5: {change.entered}")
            if change.left:
                print(f"t={change.time:12.0f}  left    top-5: {change.left}")
    final = monitor.current()
    print(f"\n{changes} composition changes over 60 ticks")
    print(f"final top-5: {final.object_ids}")
    hot = [i for i in final.object_ids if i < 10]
    print(f"({len(hot)}/5 are the artificially warmed stations 0-9)")


if __name__ == "__main__":
    main()
