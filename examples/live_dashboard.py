"""Live dashboard, served: concurrent widgets over the serving tier.

The PR-6 demo client for ``repro.serving``: a dashboard page holds
many widgets ("top stations over the last hour / day / week"), each
an independent client polling ``top_k`` at its own cadence.  All of
them talk to one :class:`~repro.serving.ServingCoordinator`, which
queues the single-query requests and flushes adaptive micro-batches
through the engine's batched pipeline — identical widgets hit the
epoch-guarded result cache, near-simultaneous distinct widgets share
a batch.  Meanwhile a feed task appends fresh readings; every append
bumps the engine epoch, so cached widget answers silently expire and
the next poll recomputes (never a stale frame).

Headless and offline by default (prints a transcript, seconds-scale,
no network, no display) so CI can smoke it.

Run:  PYTHONPATH=src python examples/live_dashboard.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import generate_temp
from repro.engine import TemporalRankingEngine
from repro.serving import EngineBackend, ServingCoordinator

#: (label, trailing-window fraction of the domain) per dashboard widget.
WIDGETS = [
    ("last-hour", 0.02),
    ("last-day", 0.10),
    ("last-week", 0.45),
    ("last-day-dup", 0.10),  # a second copy of the day widget: cache food
]

POLLS_PER_WIDGET = 12
K = 5


async def widget_client(coordinator, db, label, fraction, log):
    """One dashboard widget: poll its trailing window top-k."""
    rng = np.random.default_rng(abs(hash(label)) % (2**32))
    window = (db.t_max - db.t_min) * fraction
    for _ in range(POLLS_PER_WIDGET):
        result = await coordinator.top_k(db.t_max - window, db.t_max, K)
        log[label] = list(result.object_ids)
        # Poisson-ish think time between polls (open UI, human pace).
        await asyncio.sleep(float(rng.exponential(0.004)))


async def feed_task(engine, db):
    """The live feed: appends keep arriving while widgets poll."""
    rng = np.random.default_rng(7)
    now = db.t_max
    step = (db.t_max - db.t_min) / 400
    for _ in range(8):
        await asyncio.sleep(0.006)
        now += step
        station = int(rng.integers(0, 10))
        reading = float(rng.uniform(380, 420))  # a heat wave
        engine.append(station, now, reading)


async def main() -> None:
    db = generate_temp(num_objects=120, avg_readings=40, seed=23)
    engine = TemporalRankingEngine(db, kmax=50)
    coordinator = ServingCoordinator(
        EngineBackend(engine), max_batch=32, max_delay=0.002
    )
    print(f"database: {db}")
    print(f"widgets: {[label for label, _ in WIDGETS]}, k = {K}\n")

    log: dict = {}
    async with coordinator:
        await asyncio.gather(
            feed_task(engine, db),
            *[
                widget_client(coordinator, db, label, fraction, log)
                for label, fraction in WIDGETS
            ],
        )

    for label, _ in WIDGETS:
        print(f"{label:>14}: top-{K} = {log[label]}")
    stats = coordinator.stats
    cache = coordinator.cache.stats
    print(
        f"\nserved {stats.requests} widget polls in {stats.batches} "
        f"micro-batches (mean {stats.mean_batch:.1f}/batch)"
    )
    print(
        f"result cache: {cache.hits} hits, {cache.stale} expired by "
        f"appends (epoch bumps), {stats.deduped} deduped in-batch"
    )
    assert stats.requests == POLLS_PER_WIDGET * len(WIDGETS)
    # The feed appended mid-run, so at least one cached frame expired.
    assert cache.stale > 0, "expected append epochs to expire cached frames"
    print("every answer recomputed-or-cached at the current epoch: OK")


if __name__ == "__main__":
    asyncio.run(main())
