"""Live dashboard, served: concurrent widgets over the serving tier.

The PR-6 demo client for ``repro.serving``: a dashboard page holds
many widgets ("top stations over the last hour / day / week"), each
an independent client polling ``top_k`` at its own cadence.  All of
them talk to one :class:`~repro.serving.ServingCoordinator`, which
queues the single-query requests and flushes adaptive micro-batches
through the engine's batched pipeline — identical widgets hit the
epoch-guarded result cache, near-simultaneous distinct widgets share
a batch.  Meanwhile a feed task appends fresh readings; every append
bumps the engine epoch, so cached widget answers silently expire and
the next poll recomputes (never a stale frame).

Headless and offline by default (prints a transcript, seconds-scale,
no network, no display) so CI can smoke it.

``--workers N`` serves the same dashboard through the process-backed
execution pool (worker processes over mmap-mounted snapshots): every
feed append now also forces a pool re-snapshot and worker re-mounts,
exercised live while widgets keep polling — answers are unchanged.

Run:  PYTHONPATH=src python examples/live_dashboard.py [--workers 2]
"""

from __future__ import annotations

import argparse
import asyncio

import numpy as np

from repro import generate_temp
from repro.engine import TemporalRankingEngine
from repro.serving import EngineBackend, ServingCoordinator

#: (label, trailing-window fraction of the domain) per dashboard widget.
WIDGETS = [
    ("last-hour", 0.02),
    ("last-day", 0.10),
    ("last-week", 0.45),
    ("last-day-dup", 0.10),  # a second copy of the day widget: cache food
]

POLLS_PER_WIDGET = 12
K = 5


async def widget_client(coordinator, db, label, fraction, log):
    """One dashboard widget: poll its trailing window top-k."""
    rng = np.random.default_rng(abs(hash(label)) % (2**32))
    window = (db.t_max - db.t_min) * fraction
    for _ in range(POLLS_PER_WIDGET):
        result = await coordinator.top_k(db.t_max - window, db.t_max, K)
        log[label] = list(result.object_ids)
        # Poisson-ish think time between polls (open UI, human pace).
        await asyncio.sleep(float(rng.exponential(0.004)))


async def feed_task(engine, db):
    """The live feed: appends keep arriving while widgets poll."""
    rng = np.random.default_rng(7)
    now = db.t_max
    step = (db.t_max - db.t_min) / 400
    for _ in range(8):
        await asyncio.sleep(0.006)
        now += step
        station = int(rng.integers(0, 10))
        reading = float(rng.uniform(380, 420))  # a heat wave
        engine.append(station, now, reading)


async def main(workers: int = 1) -> None:
    db = generate_temp(num_objects=120, avg_readings=40, seed=23)
    engine = TemporalRankingEngine(db, kmax=50)
    coordinator = ServingCoordinator(
        EngineBackend(engine), max_batch=32, max_delay=0.002, workers=workers
    )
    print(f"database: {db}")
    mode = f"pool of {workers} worker processes" if workers > 1 else "inline"
    print(f"widgets: {[label for label, _ in WIDGETS]}, k = {K} ({mode})\n")

    log: dict = {}
    async with coordinator:
        await asyncio.gather(
            feed_task(engine, db),
            *[
                widget_client(coordinator, db, label, fraction, log)
                for label, fraction in WIDGETS
            ],
        )

    for label, _ in WIDGETS:
        print(f"{label:>14}: top-{K} = {log[label]}")
    stats = coordinator.stats
    cache = coordinator.cache.stats
    print(
        f"\nserved {stats.requests} widget polls in {stats.batches} "
        f"micro-batches (mean {stats.mean_batch:.1f}/batch)"
    )
    print(
        f"result cache: {cache.hits} hits, {cache.stale} expired by "
        f"appends (epoch bumps), {stats.deduped} deduped in-batch"
    )
    if stats.pool_dispatches:
        print(
            f"pool: {stats.pool_dispatches} dispatches, "
            f"{stats.pool_resyncs} re-snapshots after appends, "
            f"{stats.pool_remounts} worker re-mounts, "
            f"{stats.warmups} index warm-ups"
        )
    assert stats.requests == POLLS_PER_WIDGET * len(WIDGETS)
    # The feed appended mid-run, so epoch bumps must have expired
    # cached frames — observed directly (a widget re-polled a key
    # cached at an older epoch) or, in pooled mode, via the pool
    # re-snapshotting after appends (slower per-batch latency can
    # let the short feed finish before any stale lookup lands).
    if workers > 1:
        assert cache.stale > 0 or stats.pool_resyncs > 0, (
            "expected append epochs to expire cached frames or "
            "force pool re-snapshots"
        )
    else:
        assert cache.stale > 0, "expected append epochs to expire cached frames"
    print("every answer recomputed-or-cached at the current epoch: OK")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="execution worker processes (N>1 uses the serving pool)",
    )
    asyncio.run(main(parser.parse_args().workers))
