"""Distributed aggregate top-k: the paper's open direction, simulated.

The paper's conclusion names "extending to the distributed setting" as
an open problem.  This example runs both shard layouts the library
provides and compares their communication bills:

* object partitioning — each object on one node; merging local top-k
  lists is exact and ships only p*k pairs;
* time partitioning — each node holds one temporal slice of every
  object; the naive protocol ships every partial score, while the
  threshold algorithm (Fagin-style) stops early on skewed data.

Run:  python examples/distributed_ranking.py
"""

from __future__ import annotations

from repro import (
    ObjectPartitionedCluster,
    TimePartitionedCluster,
    generate_temp,
)


def main() -> None:
    db = generate_temp(num_objects=300, avg_readings=60, seed=17)
    span = db.t_max - db.t_min
    t1, t2, k = span * 0.3, span * 0.6, 10
    reference = db.brute_force_top_k(t1, t2, k)
    print(f"database: {db}; query top-{k} over 30% of the domain\n")

    # --- object partitioning -------------------------------------------
    objcluster = ObjectPartitionedCluster(db, num_nodes=6)
    answer = objcluster.query(t1, t2, k)
    assert answer.object_ids == reference.object_ids
    print("object-partitioned (6 nodes):")
    print(f"  exact answer, {objcluster.comm.messages} messages, "
          f"{objcluster.comm.pairs} pairs ({objcluster.comm.bytes} bytes)\n")

    # --- time partitioning ---------------------------------------------
    timecluster = TimePartitionedCluster(db, num_nodes=6)

    timecluster.comm.reset()
    answer = timecluster.query_scatter_gather(t1, t2, k)
    assert answer.object_ids == reference.object_ids
    scatter = (timecluster.comm.messages, timecluster.comm.pairs)

    timecluster.comm.reset()
    answer = timecluster.query_threshold(t1, t2, k, batch_size=8)
    assert answer.object_ids == reference.object_ids
    ta = (timecluster.comm.messages, timecluster.comm.pairs)

    print("time-partitioned (6 nodes):")
    print(f"  scatter-gather: {scatter[0]} messages, {scatter[1]} pairs")
    print(f"  threshold alg : {ta[0]} messages, {ta[1]} pairs "
          f"({scatter[1] / max(ta[1], 1):.1f}x fewer pairs)" if ta[1] < scatter[1]
          else f"  threshold alg : {ta[0]} messages, {ta[1]} pairs")
    print("\nboth layouts return the exact global top-k; they differ only "
          "in communication.")


if __name__ == "__main__":
    main()
